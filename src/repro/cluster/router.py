"""The cluster front door: fan-out, merge, degrade, cache.

:class:`ClusterRouter` speaks the same NDJSON protocol as a single
server — clients cannot tell the difference until they look at a
``health`` payload — but executes nothing itself.  Reads fan out to
every healthy shard under a **per-shard deadline budget** (a fraction
of the request timeout, forwarded as the shard request's ``timeout``
field so the PR 3 cooperative deadline machinery cancels overlong DP
work shard-side too), results are merged and deduped, and any shard
that could not answer is *named*: the response carries
``degraded: true`` + ``failed_shards: [...]`` instead of silently
returning a subset.  Writes broadcast to all shards (each
:class:`~repro.cluster.backend.ShardedQueryService` keeps only its
owned rows) and require the full ring — a partial write is an
``unavailable`` error, never a silent divergence.

Each shard link is wrapped in the PR 3 resilience machinery: one
:class:`~repro.server.resilience.CircuitBreaker` per shard (so a dead
shard costs one fast-fail, not a connect timeout, per request) and a
:class:`~repro.server.resilience.RetryPolicy` applied only to
*idempotent* calls (reads; never broadcast writes) and only within the
shard's deadline budget.

Hot names hit the TTL :class:`~repro.cluster.cache.ResultCache`
instead of the ring; see its module docstring for the invalidation
rules.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import random
import threading
import time
from dataclasses import dataclass

from repro import faults, obs
from repro.errors import (
    CircuitOpenError,
    ProtocolError,
    ServerError,
    TransportError,
)
from repro.minidb.expr import contains_aggregate
from repro.minidb.sql import AnalyzeStmt, ExplainStmt, InsertStmt, SelectStmt
from repro.server import protocol
from repro.server.app import LexEqualServer, serve_async
from repro.server.cache import StatementCache
from repro.server.resilience import (
    BreakerPolicy,
    CircuitBreaker,
    RetryPolicy,
)
from repro.server.service import QueryService

from repro.cluster.cache import ResultCache
from repro.cluster.links import ShardLink, ShardTimeoutError
from repro.cluster.supervisor import ShardSupervisor

__all__ = ["BackgroundCluster", "ClusterRouter", "serve_cluster"]


class _RouterLocalService:
    """The router's stand-in for a :class:`QueryService`.

    The router owns no database; the only service behaviour it reuses
    is the ``faults`` op (the failpoint registry is process-global).
    """

    faults_op = staticmethod(QueryService.faults_op)


@dataclass
class _ShardOutcome:
    """One shard's contribution to a fan-out."""

    index: int
    name: str
    ok: bool
    result: dict | None = None
    reason: str | None = None
    message: str | None = None


class ClusterRouter(LexEqualServer):
    """An NDJSON front router over one :class:`ShardSupervisor`."""

    def __init__(
        self,
        supervisor: ShardSupervisor,
        host: str = "127.0.0.1",
        port: int = protocol.DEFAULT_PORT,
        *,
        request_timeout: float | None = 30.0,
        drain_timeout: float = 10.0,
        fault_injection: bool = False,
        shard_budget: float = 0.8,
        cache_ttl: float = 5.0,
        cache_entries: int = 1024,
        retry: RetryPolicy | None = None,
        breaker: BreakerPolicy | None = None,
        rng: random.Random | None = None,
    ):
        super().__init__(
            _RouterLocalService(),
            host,
            port,
            max_workers=1,  # the router never runs CPU work itself
            max_inflight=1,
            request_timeout=request_timeout,
            drain_timeout=drain_timeout,
            fault_injection=fault_injection,
        )
        if not 0.0 < shard_budget <= 1.0:
            raise ValueError(
                f"shard_budget must be in (0, 1], got {shard_budget}"
            )
        self.supervisor = supervisor
        self.request_timeout = request_timeout or 30.0
        #: Fraction of the request timeout each shard may spend; the
        #: remainder is the router's own margin for merging and retries.
        self.shard_budget = shard_budget
        self.cache = ResultCache(cache_entries, cache_ttl)
        self.retry = retry or RetryPolicy(
            max_attempts=3, base_delay=0.02, multiplier=2.0, max_delay=0.25
        )
        self._breaker_policy = breaker or BreakerPolicy(
            failure_threshold=5, reset_timeout=1.0
        )
        self._breakers: dict[int, CircuitBreaker] = {}
        self._links: dict[int, ShardLink] = {}
        self._rng = rng or random.Random()
        self._round_robin = itertools.count()
        self.statements = StatementCache(256)

    # ----------------------------------------------------------- lifecycle

    async def shutdown(self) -> None:
        """Router-aware drain (DESIGN.md §11.4).

        1. the base drain closes the listener *first*, then waits for
           in-flight fan-outs to write their responses;
        2. shard links are closed;
        3. drain is forwarded to every shard: the supervisor SIGTERMs
           them (their own graceful drain) and reaps every process, so
           a router exit never leaks shard processes.
        """
        await super().shutdown()
        for link in self._links.values():
            link.close()
        self._links.clear()
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self.supervisor.stop)

    def info(self) -> dict:
        info = super().info()
        info["role"] = "router"
        info["shards"] = self.supervisor.info()
        info["cache"] = self.cache.info()
        return info

    # ------------------------------------------------------------ dispatch

    async def _dispatch(self, session, request: dict):
        op = request["op"]
        if op == "ping":
            return "pong"
        if op == "health":
            return self._health()
        if op == "stats":
            return self._stats()
        if op == "faults":
            if not self.fault_injection:
                raise ProtocolError(
                    protocol.E_INVALID,
                    "fault injection is disabled on this router "
                    "(start with --fault-injection)",
                )
            return self.service.faults_op(request)
        if op == "prepare":
            sql = protocol.require_str(request, "sql")
            self.statements.statement(sql)  # fail fast on bad SQL
            return {"statement": session.prepare(sql, request.get("name"))}
        timeout = request.get("timeout")
        if timeout is not None and not isinstance(timeout, (int, float)):
            raise ProtocolError(
                protocol.E_INVALID, "'timeout' must be a number"
            )
        if op == "query":
            sql = protocol.require_str(request, "sql")
            params = protocol.optional_params(request)
            return await self._run_sql(sql, params, timeout)
        if op == "execute":
            name = protocol.require_str(request, "statement")
            sql = session.prepared_sql(name)
            params = protocol.optional_params(request)
            return await self._run_sql(sql, params, timeout)
        if op == "lexequal":
            return await self._lexequal(request, timeout)
        raise ProtocolError(  # pragma: no cover - decode_request guards
            protocol.E_UNKNOWN_OP, f"unknown op {op!r}"
        )

    # -------------------------------------------------------------- health

    def _health(self) -> dict:
        shards = self.supervisor.info()
        up = sum(1 for s in shards if s["state"] == "up")
        if up == len(shards):
            status = "ok"
        elif up:
            status = "degraded"
        else:
            status = "down"
        return {
            "status": status,
            "role": "router",
            "uptime_seconds": (
                time.monotonic() - self._started if self._started else 0.0
            ),
            "in_flight": self._active_requests,
            "strategy": "cluster",
            "wal_lsn": None,
            "shard": None,
            "shards": shards,
            "cache": self.cache.info(),
        }

    def _stats(self) -> dict:
        return {
            "server": self.info(),
            "statement_cache": self.statements.info(),
            "cluster": {
                "shards": self.supervisor.info(),
                "cache": self.cache.info(),
                "breakers": {
                    b.name: b.info() for b in self._breakers.values()
                },
            },
            "faults": faults.describe(),
            "metrics": obs.snapshot(),
        }

    # ------------------------------------------------------------ SQL path

    def _budget(self, timeout: float | None) -> float:
        total = (
            float(timeout)
            if timeout is not None and timeout > 0
            else self.request_timeout
        )
        return max(0.05, total * self.shard_budget)

    async def _run_sql(
        self, sql: str, params: dict, timeout: float | None
    ) -> dict:
        stmt = self.statements.statement(sql)
        budget = self._budget(timeout)
        if isinstance(stmt, (SelectStmt, ExplainStmt)):
            self._check_mergeable(stmt)
            key = ("sql", sql, json.dumps(params, sort_keys=True))
            cached = self.cache.get(key)
            if cached is not None:
                return cached
            payload = {"op": "query", "sql": sql}
            if params:
                payload["params"] = params
            merged, clean = await self._fan_out_read(payload, budget)
            if clean:
                self.cache.put(key, merged)
            return merged
        return await self._broadcast_write(stmt, sql, params, budget)

    @staticmethod
    def _check_mergeable(stmt) -> None:
        """Reject reads whose shard results cannot be merged by union.

        Concatenation+dedup is only correct for plain (optionally
        DISTINCT) selections; cross-shard aggregation, ordering and
        limiting would need a merge executor the router does not have
        (DESIGN.md §11.3 documents the boundary).
        """
        select = stmt.query if isinstance(stmt, ExplainStmt) else stmt
        unmergeable = (
            select.group_by
            or select.having is not None
            or select.order_by
            or select.limit is not None
            or any(
                item.expr is not None and contains_aggregate(item.expr)
                for item in select.items
            )
        )
        if unmergeable:
            raise ProtocolError(
                protocol.E_SQL,
                "aggregates, GROUP BY, ORDER BY and LIMIT are not "
                "supported in cluster mode (results merge by union)",
            )

    async def _fan_out_read(
        self, payload: dict, budget: float
    ) -> tuple[dict, bool]:
        obs.incr("cluster.fanouts")
        shards = self.supervisor.shards
        up = [s for s in shards if s.state == "up"]
        down = [s.name for s in shards if s.state != "up"]
        for _ in down:
            obs.incr("cluster.shard.failures")
        outcomes = list(
            await asyncio.gather(
                *(
                    self._call_shard(s, payload, budget, retryable=True)
                    for s in up
                )
            )
        )
        outcomes.sort(key=lambda o: o.index)
        return self._merge_read(outcomes, down)

    def _merge_read(
        self, outcomes: list[_ShardOutcome], down: list[str]
    ) -> tuple[dict, bool]:
        failed = sorted(
            down + [o.name for o in outcomes if not o.ok]
        )
        oks = [o for o in outcomes if o.ok]
        if not oks:
            raise ProtocolError(
                protocol.E_UNAVAILABLE,
                "no shard could answer "
                f"(failed shards: {', '.join(failed) or 'none up'})",
            )
        first = oks[0].result or {}
        if "columns" in first:
            rows: list = []
            seen: set[str] = set()
            for outcome in oks:
                for row in (outcome.result or {}).get("rows", ()):
                    key = json.dumps(row, ensure_ascii=False)
                    if key not in seen:
                        seen.add(key)
                        rows.append(row)
            payload = {
                "columns": first.get("columns", []),
                "rows": rows,
                "row_count": len(rows),
            }
        else:
            payload = {
                "row_count": sum(
                    int((o.result or {}).get("row_count", 0)) for o in oks
                )
            }
        failed_languages: set[str] = set()
        shard_degraded = False
        for outcome in oks:
            result = outcome.result or {}
            if result.get("degraded"):
                shard_degraded = True
            failed_languages.update(result.get("failed_languages", ()))
        if failed_languages:
            payload["failed_languages"] = sorted(failed_languages)
        if failed:
            payload["failed_shards"] = failed
        clean = not failed and not failed_languages and not shard_degraded
        if not clean:
            payload["degraded"] = True
            obs.incr("cluster.degraded_responses")
        return payload, clean

    async def _broadcast_write(
        self, stmt, sql: str, params: dict, budget: float
    ) -> dict:
        shards = self.supervisor.shards
        down = [s.name for s in shards if s.state != "up"]
        if down:
            # Refuse before touching any shard: a write applied to a
            # partial ring silently loses the down shards' rows.
            raise ProtocolError(
                protocol.E_UNAVAILABLE,
                f"write requires every shard up; down: {', '.join(down)}",
            )
        payload = {"op": "query", "sql": sql}
        if params:
            payload["params"] = params
        obs.incr("cluster.fanouts")
        outcomes = list(
            await asyncio.gather(
                *(
                    self._call_shard(s, payload, budget, retryable=False)
                    for s in shards
                )
            )
        )
        # The ring may have diverged whatever happened: drop cached
        # reads before reporting success *or* failure.
        self.cache.flush()
        failures = [o for o in outcomes if not o.ok]
        if failures:
            detail = "; ".join(
                f"{o.name}: {o.message or o.reason}" for o in failures
            )
            raise ProtocolError(
                protocol.E_UNAVAILABLE,
                f"write failed on {len(failures)} shard(s): {detail}",
            )
        counts = [int((o.result or {}).get("row_count", 0)) for o in outcomes]
        if isinstance(stmt, InsertStmt):
            # Each shard kept only its owned rows: counts are disjoint.
            row_count = sum(counts)
        elif isinstance(stmt, AnalyzeStmt):
            row_count = max(counts) if counts else 0
        else:
            # DDL applies identically everywhere; report one copy.
            row_count = counts[0] if counts else 0
        return {"row_count": row_count}

    # ------------------------------------------------------- lexequal path

    async def _lexequal(self, request: dict, timeout: float | None) -> dict:
        left = protocol.require_str(request, "left")
        right = protocol.require_str(request, "right")
        threshold = request.get("threshold")
        languages = request.get("languages", "")
        if isinstance(languages, list):
            languages = ",".join(str(lang) for lang in languages)
        key = ("lexequal", left, right, threshold, languages)
        cached = self.cache.get(key)
        if cached is not None:
            return cached
        payload = {"op": "lexequal", "left": left, "right": right}
        if threshold is not None:
            payload["threshold"] = threshold
        if languages:
            payload["languages"] = languages
        budget = self._budget(timeout)
        up = self.supervisor.healthy()
        if not up:
            raise ProtocolError(
                protocol.E_UNAVAILABLE, "no shard is up to answer lexequal"
            )
        # A comparison is shard-independent (matcher-only): round-robin
        # for load spread, fail over through the rest of the ring.
        start = next(self._round_robin) % len(up)
        failures: list[_ShardOutcome] = []
        for offset in range(len(up)):
            shard = up[(start + offset) % len(up)]
            outcome = await self._call_shard(
                shard, payload, budget, retryable=True
            )
            if outcome.ok:
                result = outcome.result or {}
                if not result.get("degraded"):
                    self.cache.put(key, result)
                return result
            failures.append(outcome)
        detail = "; ".join(f"{o.name}: {o.reason}" for o in failures)
        raise ProtocolError(
            protocol.E_UNAVAILABLE,
            f"lexequal failed on every healthy shard ({detail})",
        )

    # ------------------------------------------------------------ one call

    def _link(self, shard) -> ShardLink | None:
        generation, host, port = shard.generation, shard.host, shard.port
        if host is None or port is None:
            return None
        link = self._links.get(shard.index)
        if (
            link is None
            or link.generation != generation
            or link.host != host
            or link.port != port
        ):
            if link is not None:
                link.close()
            link = ShardLink(shard.name, host, port, generation)
            self._links[shard.index] = link
        return link

    async def _call_shard(
        self, shard, payload: dict, budget: float, *, retryable: bool
    ) -> _ShardOutcome:
        """One shard's slice of a fan-out, inside its deadline budget.

        Retries (transport faults and structured ``overloaded``
        rejects) are idempotency-aware — never for broadcast writes —
        and always bounded by the *same* budget: retrying must not let
        one shard blow the fan-out's tail latency.
        """
        breaker = self._breakers.get(shard.index)
        if breaker is None:
            breaker = CircuitBreaker(shard.name, self._breaker_policy)
            self._breakers[shard.index] = breaker
        loop = asyncio.get_running_loop()
        deadline = loop.time() + budget
        max_attempts = self.retry.max_attempts if retryable else 1
        attempt = 1
        while True:
            try:
                breaker.allow()
            except CircuitOpenError:
                obs.incr("cluster.shard.failures")
                return _ShardOutcome(
                    shard.index, shard.name, False, reason="breaker_open"
                )
            link = self._link(shard)
            remaining = deadline - loop.time()
            if link is None or remaining <= 0:
                obs.incr("cluster.shard.failures")
                return _ShardOutcome(
                    shard.index,
                    shard.name,
                    False,
                    reason="timeout" if link is not None else "no_address",
                )
            # Forward the remaining budget as the shard request's
            # cooperative deadline: the shard's pool anchors it at
            # admission and DP kernels poll it between rows.
            request = {**payload, "timeout": remaining}
            try:
                envelope = await link.request(request, remaining)
            except ShardTimeoutError:
                breaker.record_failure()
                obs.incr("cluster.shard.failures")
                return _ShardOutcome(
                    shard.index, shard.name, False, reason="timeout"
                )
            except TransportError:
                breaker.record_failure()
                obs.incr("cluster.shard.transport_errors")
                if retryable and attempt < max_attempts:
                    delay = min(
                        self.retry.backoff(attempt, self._rng),
                        max(0.0, deadline - loop.time()),
                    )
                    if loop.time() + delay < deadline:
                        await asyncio.sleep(delay)
                        attempt += 1
                        continue
                obs.incr("cluster.shard.failures")
                return _ShardOutcome(
                    shard.index, shard.name, False, reason="transport"
                )
            except ProtocolError:
                breaker.record_failure()
                obs.incr("cluster.shard.failures")
                return _ShardOutcome(
                    shard.index, shard.name, False, reason="protocol"
                )
            breaker.record_success()
            if envelope.get("ok"):
                return _ShardOutcome(
                    shard.index,
                    shard.name,
                    True,
                    result=envelope.get("result"),
                )
            error = envelope.get("error") or {}
            code = str(error.get("code", "unknown"))
            if (
                retryable
                and code == protocol.E_OVERLOADED
                and attempt < max_attempts
            ):
                delay = min(
                    self.retry.backoff(attempt, self._rng),
                    max(0.0, deadline - loop.time()),
                )
                if loop.time() + delay < deadline:
                    await asyncio.sleep(delay)
                    attempt += 1
                    continue
            obs.incr("cluster.shard.failures")
            return _ShardOutcome(
                shard.index,
                shard.name,
                False,
                reason=f"error:{code}",
                message=str(error.get("message", "")),
            )


# ------------------------------------------------------------ entrypoints


def serve_cluster(
    shard_count: int,
    host: str = "127.0.0.1",
    port: int = protocol.DEFAULT_PORT,
    *,
    shard_args: tuple[str, ...] = (),
    ready=None,
    supervisor_options: dict | None = None,
    **router_options,
) -> None:
    """Blocking entrypoint: spawn shards, route until SIGTERM, drain."""
    supervisor = ShardSupervisor(
        shard_count, shard_args=shard_args, **(supervisor_options or {})
    )
    supervisor.start()
    try:
        router = ClusterRouter(supervisor, host, port, **router_options)
        asyncio.run(serve_async(router, ready=ready))
    finally:
        # Normally already stopped by ClusterRouter.shutdown; this is
        # the bind-failure path (never leak shard processes).
        supervisor.stop()


class BackgroundCluster:
    """A whole cluster (router thread + shard processes) for tests.

    Mirrors :class:`~repro.server.app.BackgroundServer`: exiting the
    context performs the router's graceful drain, which SIGTERMs and
    reaps every shard process.
    """

    def __init__(
        self,
        shard_count: int = 3,
        *,
        shard_args: tuple[str, ...] = (),
        supervisor_options: dict | None = None,
        **router_options,
    ):
        self.shard_count = shard_count
        self.shard_args = tuple(shard_args)
        self.supervisor_options = dict(supervisor_options or {})
        self.router_options = router_options
        self.supervisor: ShardSupervisor | None = None
        self.router: ClusterRouter | None = None
        self.host: str | None = None
        self.port: int | None = None
        self._ready = threading.Event()
        self._stop: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None

    def start(self) -> "BackgroundCluster":
        self.supervisor = ShardSupervisor(
            self.shard_count,
            shard_args=self.shard_args,
            **self.supervisor_options,
        )
        self.supervisor.start()
        self.router = ClusterRouter(
            self.supervisor, "127.0.0.1", 0, **self.router_options
        )
        self._thread = threading.Thread(
            target=self._run, name="lexequal-router", daemon=True
        )
        self._thread.start()
        self._ready.wait(timeout=30.0)
        if self.port is None:
            self.supervisor.stop()
            raise ServerError("background cluster failed to start")
        return self

    def _run(self) -> None:
        async def main():
            self._loop = asyncio.get_running_loop()
            self._stop = asyncio.Event()

            def ready(host, port):
                self.host, self.port = host, port
                self._ready.set()

            try:
                await serve_async(self.router, ready=ready, stop=self._stop)
            finally:
                self._ready.set()  # unblock start() on bind failure

        asyncio.run(main())

    def stop(self, timeout: float = 30.0) -> None:
        if self._loop is not None and self._stop is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:
                pass
        if self._thread is not None:
            self._thread.join(timeout=timeout)
        if self.supervisor is not None:
            self.supervisor.stop()  # idempotent backstop

    def __enter__(self) -> "BackgroundCluster":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
