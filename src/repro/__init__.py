"""LexEQUAL: multiscript phonetic name matching for database systems.

A full reproduction of Kumaran & Haritsa, *LexEQUAL: Supporting
Multiscript Matching in Database Systems* (EDBT 2004): the LexEQUAL
operator, its text-to-phoneme substrate, the q-gram and phonetic-index
accelerations, an embeddable relational engine to host them, and the
paper's complete quality/efficiency evaluation harness.

Quickstart::

    from repro import LexEqualMatcher, LangText

    matcher = LexEqualMatcher()
    matcher.matches("Nehru", LangText("नेहरु", "hindi"))   # True

See ``examples/`` for database-backed usage and README.md for the
architecture overview.
"""

from repro.core.config import MatchConfig
from repro.core.matcher import LexEqualMatcher, MatchExplanation
from repro.core.operator import MatchOutcome, lex_equal
from repro.core.strategies import (
    ExactStrategy,
    NameCatalog,
    NameRecord,
    NaiveUdfStrategy,
    PhoneticIndexStrategy,
    QGramStrategy,
)
from repro.core.integration import install_lexequal
from repro.errors import ReproError
from repro.minidb.catalog import Database
from repro.minidb.values import LangText

__version__ = "1.0.0"

__all__ = [
    "MatchConfig",
    "LexEqualMatcher",
    "MatchExplanation",
    "MatchOutcome",
    "lex_equal",
    "NameCatalog",
    "NameRecord",
    "ExactStrategy",
    "NaiveUdfStrategy",
    "QGramStrategy",
    "PhoneticIndexStrategy",
    "install_lexequal",
    "Database",
    "LangText",
    "ReproError",
    "__version__",
]
