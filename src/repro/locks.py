"""Lock factory: named locks, sanitizer-tracked under ``REPRO_LOCKSAN=1``.

Every lock in the system is created through :func:`make_lock` /
:func:`make_rlock` with its canonical name from the sanctioned-order
spec (``repro.analysis.lockspec``).  By default the factory returns
plain ``threading`` locks — zero overhead, no analysis imports.  With
``REPRO_LOCKSAN=1`` in the environment it returns the runtime
sanitizer's tracked wrappers instead, so the entire test suite (the CI
``tests-locksan`` leg) runs with lock-order, ownership, and
fork-safety enforcement live.

The environment is consulted per call, not at import time: a test can
flip ``REPRO_LOCKSAN`` and construct a fresh engine without reloading
modules.
"""

from __future__ import annotations

import os
import threading


def sanitizer_enabled() -> bool:
    """True when ``REPRO_LOCKSAN`` requests tracked locks."""
    return os.environ.get("REPRO_LOCKSAN", "") not in ("", "0")


def make_lock(name: str):
    """A named mutex: ``threading.Lock`` or a sanitizer ``TrackedLock``."""
    if sanitizer_enabled():
        from repro.analysis.sanitizer import TrackedLock

        return TrackedLock(name)
    return threading.Lock()


def make_rlock(name: str):
    """A named reentrant lock, sanitizer-tracked when enabled."""
    if sanitizer_enabled():
        from repro.analysis.sanitizer import TrackedRLock

        return TrackedRLock(name)
    return threading.RLock()
