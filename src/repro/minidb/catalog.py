"""The database catalog: tables, secondary indexes, and UDFs.

A :class:`Database` owns heap tables and keeps their B+ tree indexes in
sync on insert/delete.  User-defined functions registered here become
callable from SQL expressions — the mechanism the paper uses to add
LexEQUAL to a stock engine ("all commercial database systems allow
User-defined Functions (UDF) that may be used to add new functionality
to the server").
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from dataclasses import dataclass

from repro.errors import DatabaseError, SchemaError
from repro.locks import make_rlock
from repro.minidb.btree import BPlusTree
from repro.minidb.schema import Column, TableSchema
from repro.minidb.table import HeapTable


@dataclass
class IndexInfo:
    """A secondary index: a B+ tree over one column of one table."""

    name: str
    table_name: str
    column_name: str
    tree: BPlusTree


class Database:
    """A database catalog: named tables, indexes and UDFs.

    Mutations (DDL, row writes, UDF/observer registration) serialize on
    one reentrant lock so concurrent server sessions cannot corrupt the
    catalog or leave indexes half-maintained.  Reads — lookups, scans,
    query execution — stay lock-free: the read paths only traverse
    structures that mutations replace or append to atomically under the
    GIL, which keeps the many-readers/few-writers service workload fast.

    ``storage`` selects the durability backend (see
    :mod:`repro.storage.manager`): the default
    :class:`~repro.storage.manager.MemoryBackend` keeps today's
    in-memory behaviour; a
    :class:`~repro.storage.manager.FileBackend` WAL-logs every
    committed mutation and checkpoints heap + index snapshots, so
    :func:`repro.storage.open_database` can reopen the catalog after a
    crash.  Mutation hooks fire *after* the in-memory structures are
    consistent, inside the write lock, so the log order equals the
    effect order.
    """

    def __init__(self, storage=None) -> None:
        # Reentrant because write paths nest (insert → observer →
        # accelerator maintenance may consult the catalog again).
        self._write_lock = make_rlock("minidb.catalog.write")
        self._tables: dict[str, HeapTable] = {}
        self._indexes: dict[str, IndexInfo] = {}
        self._indexes_by_table: dict[str, list[IndexInfo]] = {}
        self._udfs: dict[str, Callable] = {}
        self._observers: dict[str, list] = {}
        self._accelerators: dict[tuple[str, str], object] = {}
        if storage is None:
            from repro.storage.manager import MemoryBackend

            storage = MemoryBackend()
        self.storage = storage
        bind = getattr(storage, "bind", None)
        if bind is not None:
            bind(self)
        from repro.minidb.stats import StatsCatalog

        #: The stats catalog ``ANALYZE`` fills (cost-based planning input).
        self.stats = StatsCatalog()

    @property
    def write_lock(self):
        """The catalog write lock (reentrant, usable as a context
        manager).

        Lock order is catalog -> storage backend everywhere: mutations
        hold this lock when they reach the storage hooks (which then
        take the backend's lock), and
        :meth:`repro.storage.manager.FileBackend.checkpoint` acquires
        it *before* its own lock — acquiring them in the opposite order
        anywhere would deadlock against a concurrent writer.
        """
        return self._write_lock

    # ------------------------------------------------------------- tables

    def create_table(
        self, name: str, columns: Iterable[Column]
    ) -> HeapTable:
        """Create a table; raises if the name is taken."""
        key = name.lower()
        with self._write_lock:
            if key in self._tables:
                raise SchemaError(f"table {name!r} already exists")
            table = HeapTable(TableSchema(name, tuple(columns)))
            self._tables[key] = table
            self._indexes_by_table[key] = []
            self.storage.on_create_table(table.schema)
            return table

    def drop_table(self, name: str) -> None:
        """Drop a table, its indexes, and its planner statistics."""
        key = name.lower()
        with self._write_lock:
            table = self._require_table(name)
            for info in self._indexes_by_table.pop(key, []):
                self._indexes.pop(info.name.lower(), None)
            del self._tables[key]
            # Stale stats would keep skewing the cost-based planner
            # (worse: attach to a recreated table of the same name).
            self.stats.drop(table.name)
            self.storage.on_drop_table(table.name)
            if self.storage.persistent and not self.storage.replaying:
                self.storage.save_stats(self.stats.to_dict())

    def table(self, name: str) -> HeapTable:
        return self._require_table(name)

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def table_names(self) -> tuple[str, ...]:
        return tuple(sorted(t.name for t in self._tables.values()))

    def _require_table(self, name: str) -> HeapTable:
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise SchemaError(f"no such table {name!r}") from None

    # -------------------------------------------------------------- rows

    def insert(self, table_name: str, row: tuple) -> int:
        """Insert a row, maintaining all indexes; returns the rowid."""
        with self._write_lock:
            table = self._require_table(table_name)
            rowid = table.insert(row)
            stored = table.fetch(rowid)
            for info in self._indexes_by_table[table_name.lower()]:
                pos = table.schema.position(info.column_name)
                key = stored[pos]
                if key is not None:  # B-tree indexes skip NULL keys
                    info.tree.insert(key, rowid)
            self.storage.on_insert(table.name, rowid, stored)
            for observer in self._observers.get(table_name.lower(), []):
                observer.on_insert(rowid, stored)
            return rowid

    def insert_many(self, table_name: str, rows: Iterable[tuple]) -> int:
        """Bulk insert in one storage transaction (one WAL commit)."""
        count = 0
        with self.storage.transaction():
            for row in rows:
                self.insert(table_name, row)
                count += 1
        return count

    def delete_row(self, table_name: str, rowid: int) -> None:
        """Delete one row by rowid, maintaining all indexes."""
        with self._write_lock:
            table = self._require_table(table_name)
            old = table.delete(rowid)
            for info in self._indexes_by_table[table_name.lower()]:
                pos = table.schema.position(info.column_name)
                if old[pos] is not None:
                    info.tree.delete(old[pos], rowid)
            self.storage.on_delete(table.name, rowid)
            for observer in self._observers.get(table_name.lower(), []):
                observer.on_delete(rowid, old)

    # ------------------------------------------------------------ indexes

    def create_index(
        self,
        index_name: str,
        table_name: str,
        column_name: str,
        *,
        order: int = 64,
    ) -> IndexInfo:
        """Build a B+ tree index over an existing column (backfilled).

        NULL keys are not indexed (as in most engines): an index scan can
        never produce a row whose key is NULL, which matches SQL equality
        semantics.
        """
        key = index_name.lower()
        with self._write_lock:
            if key in self._indexes:
                raise SchemaError(f"index {index_name!r} already exists")
            table = self._require_table(table_name)
            pos = table.schema.position(column_name)
            tree = BPlusTree(order=order)
            for rowid, row in table.scan():
                if row[pos] is not None:  # NULL keys are not indexed
                    tree.insert(row[pos], rowid)
            info = IndexInfo(index_name, table.name, column_name, tree)
            self._indexes[key] = info
            self._indexes_by_table[table_name.lower()].append(info)
            self.storage.on_create_index(
                index_name, table.name, column_name, order
            )
            return info

    def drop_index(self, index_name: str) -> None:
        key = index_name.lower()
        with self._write_lock:
            try:
                info = self._indexes.pop(key)
            except KeyError:
                raise SchemaError(f"no such index {index_name!r}") from None
            self._indexes_by_table[info.table_name.lower()].remove(info)
            self.storage.on_drop_index(info.name)

    def index(self, index_name: str) -> IndexInfo:
        try:
            return self._indexes[index_name.lower()]
        except KeyError:
            raise SchemaError(f"no such index {index_name!r}") from None

    def index_on(self, table_name: str, column_name: str) -> IndexInfo | None:
        """The first index on ``table.column``, if any (planner hook)."""
        for info in self._indexes_by_table.get(table_name.lower(), []):
            if info.column_name.lower() == column_name.lower():
                return info
        return None

    def indexes_for(self, table_name: str) -> tuple[IndexInfo, ...]:
        return tuple(self._indexes_by_table.get(table_name.lower(), []))

    # -------------------------------------------------- observers/hooks

    def add_observer(self, table_name: str, observer) -> None:
        """Register a table observer (``on_insert(rowid, row)`` /
        ``on_delete(rowid, row)``), called after index maintenance.

        This is the hook auxiliary access structures (e.g. the phonetic
        accelerators of :mod:`repro.core.engine`) use to stay in sync.
        """
        with self._write_lock:
            self._require_table(table_name)
            self._observers.setdefault(
                table_name.lower(), []
            ).append(observer)

    def remove_observer(self, table_name: str, observer) -> None:
        with self._write_lock:
            observers = self._observers.get(table_name.lower(), [])
            if observer in observers:
                observers.remove(observer)

    def register_accelerator(
        self, table_name: str, column_name: str, accelerator
    ) -> None:
        """Register a predicate accelerator for ``table.column``.

        The planner consults it when a query has a LexEQUAL predicate on
        that column: ``accelerator.candidate_rowids(value, threshold,
        languages)`` must return a rowid list that is a superset of the
        matching rows (or None to decline).  This is the hook behind the
        paper's "inside-the-engine implementation" future work.
        """
        with self._write_lock:
            self._require_table(table_name)
            self._accelerators[
                (table_name.lower(), column_name.lower())
            ] = accelerator

    def accelerator_for(self, table_name: str, column_name: str):
        return self._accelerators.get(
            (table_name.lower(), column_name.lower())
        )

    # ------------------------------------------------------- durability

    def transaction(self):
        """Group mutations into one storage commit (one WAL fsync)."""
        return self.storage.transaction()

    def checkpoint(self) -> None:
        """Fold the WAL into a fresh checkpoint (no-op in memory)."""
        self.storage.checkpoint(self)

    def analyze(self, table_name: str | None = None) -> int:
        """Collect planner statistics (the ``ANALYZE`` statement).

        Returns the number of tables analyzed; the refreshed stats
        catalog is persisted through the storage backend.
        """
        from repro.minidb.stats import analyze_database

        count = analyze_database(self, table_name)
        self.storage.save_stats(self.stats.to_dict())
        return count

    def snapshot_state(self) -> dict:
        """Consistent catalog state for a storage checkpoint.

        Index entries carry the live ``tree`` objects; the storage
        layer serializes them (the catalog stays format-agnostic).
        """
        with self._write_lock:
            tables = [
                {
                    "name": table.schema.name,
                    "columns": [
                        (c.name, c.type.name, c.nullable)
                        for c in table.schema.columns
                    ],
                    "slots": table.slot_snapshot(),
                }
                for table in self._tables.values()
            ]
            indexes = [
                {
                    "name": info.name,
                    "table": info.table_name,
                    "column": info.column_name,
                    "tree": info.tree,
                }
                for info in self._indexes.values()
            ]
        return {"tables": tables, "indexes": indexes}

    def attach_table(self, table: HeapTable) -> None:
        """Attach a recovered heap table (storage restore path: no
        storage hook, rowids and tombstones preserved exactly)."""
        key = table.name.lower()
        with self._write_lock:
            if key in self._tables:
                raise SchemaError(f"table {table.name!r} already exists")
            self._tables[key] = table
            self._indexes_by_table[key] = []

    def attach_index(
        self,
        index_name: str,
        table_name: str,
        column_name: str,
        tree: BPlusTree,
    ) -> IndexInfo:
        """Attach a recovered index without backfilling it (storage
        restore path; the snapshot already holds every entry)."""
        key = index_name.lower()
        with self._write_lock:
            if key in self._indexes:
                raise SchemaError(f"index {index_name!r} already exists")
            table = self._require_table(table_name)
            table.schema.position(column_name)  # validate the column
            info = IndexInfo(index_name, table.name, column_name, tree)
            self._indexes[key] = info
            self._indexes_by_table[table.name.lower()].append(info)
            return info

    # --------------------------------------------------------------- UDFs

    def register_udf(self, name: str, fn: Callable) -> None:
        """Register (or replace) a function callable from SQL."""
        if not callable(fn):
            raise DatabaseError(f"UDF {name!r} is not callable")
        with self._write_lock:
            self._udfs[name.lower()] = fn

    def udf(self, name: str) -> Callable:
        try:
            return self._udfs[name.lower()]
        except KeyError:
            raise DatabaseError(f"no such function {name!r}") from None

    def has_udf(self, name: str) -> bool:
        return name.lower() in self._udfs

    # ---------------------------------------------------------------- SQL

    def execute(self, sql: str, **params):
        """Parse, plan and run a SQL statement.

        SELECT returns a :class:`~repro.minidb.planner.ResultSet`; DDL and
        INSERT return row counts.  ``params`` substitute ``:name``
        placeholders in the statement.
        """
        from repro.minidb.planner import execute_sql

        return execute_sql(self, sql, params)

    def explain(self, sql: str, *, analyze: bool = False, **params) -> str:
        """EXPLAIN (or EXPLAIN ANALYZE) a SELECT, returned as text.

        Equivalent to executing ``EXPLAIN [ANALYZE] <sql>``; provided so
        applications need not splice the keyword into their SQL.
        """
        prefix = "EXPLAIN ANALYZE " if analyze else "EXPLAIN "
        result = self.execute(prefix + sql, **params)
        return "\n".join(row[0] for row in result.rows)
