"""Rule-based planning: SQL statements → physical operator trees.

The planner is deliberately simple but does the load-bearing work for the
paper's queries:

* single-table conjuncts are pushed down to their scans, and an
  ``alias.col = literal`` conjunct turns into a B+ tree
  :class:`~repro.minidb.executor.IndexEqualScan` when an index exists —
  this is what makes the Figure 15 phonetic-index query fast;
* equi-join conjuncts become :class:`~repro.minidb.executor.HashJoin`
  keys — this is what makes the Figure 14 q-gram self-join viable;
* ``GROUP BY``/``HAVING`` with aggregates compile to hash aggregation,
  which the count filter needs;
* a ``LexEQUAL`` predicate is lowered to the registered ``lexequal`` UDF
  (the paper's "outside-the-server" deployment).  Like the commercial
  optimizer the paper complains about, the generic planner does *not*
  accelerate UDF predicates — that is exactly Table 1's lesson; the
  accelerated plans are built explicitly by :mod:`repro.core.strategies`.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

from repro import obs
from repro.errors import PlanningError
from repro.minidb.catalog import Database
from repro.minidb.executor import (
    Distinct,
    Filter,
    GroupBy,
    HashJoin,
    IndexEqualScan,
    Limit,
    NestedLoopJoin,
    PhysicalOp,
    Project,
    SeqScan,
    Sort,
)
from repro.minidb.expr import (
    Aggregate,
    Between,
    BinaryOp,
    BoolOp,
    ColumnRef,
    Expr,
    FuncCall,
    InList,
    IsNull,
    LexEqual,
    Literal,
    Param,
    UnaryOp,
    compile_expr,
    contains_aggregate,
    walk,
)
from repro.minidb.sql import (
    AnalyzeStmt,
    CreateIndexStmt,
    CreateTableStmt,
    DropIndexStmt,
    DropTableStmt,
    ExplainStmt,
    InsertStmt,
    SelectStmt,
    Statement,
    parse,
)
from repro.minidb.schema import Column
from repro.minidb.table import HeapTable


@dataclass
class ResultSet:
    """Materialized query result."""

    columns: list[str]
    rows: list[tuple]

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def first(self) -> tuple | None:
        return self.rows[0] if self.rows else None

    def scalar(self):
        """The single value of a one-row, one-column result."""
        if len(self.rows) != 1 or len(self.columns) != 1:
            raise PlanningError(
                f"scalar() needs a 1x1 result, got "
                f"{len(self.rows)}x{len(self.columns)}"
            )
        return self.rows[0][0]

    def to_dicts(self) -> list[dict]:
        return [dict(zip(self.columns, row)) for row in self.rows]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        preview = ", ".join(self.columns)
        return f"ResultSet([{preview}], {len(self.rows)} rows)"


def execute_sql(db: Database, sql: str, params: dict | None = None):
    """Parse and run one statement against ``db``."""
    return execute_statement(db, parse(sql), params or {})


def execute_statement(db: Database, stmt: Statement, params: dict):
    if isinstance(stmt, SelectStmt):
        plan = plan_select(db, stmt, params)
        names = _output_names(stmt, db)
        with obs.timed("minidb.execute_select"):
            rows = list(plan.rows())
        return ResultSet(columns=names, rows=rows)
    if isinstance(stmt, ExplainStmt):
        from repro.minidb.explain import explain as explain_plan

        plan = plan_select(db, stmt.query, params)
        lines = explain_plan(plan, analyze=stmt.analyze)
        return ResultSet(
            columns=["QUERY PLAN"], rows=[(line,) for line in lines]
        )
    if isinstance(stmt, CreateTableStmt):
        db.create_table(
            stmt.name,
            [Column(n, t, nullable) for n, t, nullable in stmt.columns],
        )
        return 0
    if isinstance(stmt, CreateIndexStmt):
        db.create_index(stmt.name, stmt.table, stmt.column)
        return 0
    if isinstance(stmt, DropTableStmt):
        db.drop_table(stmt.name)
        return 0
    if isinstance(stmt, DropIndexStmt):
        db.drop_index(stmt.name)
        return 0
    if isinstance(stmt, InsertStmt):
        count = 0
        with db.storage.transaction():
            for row_exprs in stmt.rows:
                values = tuple(
                    _eval_constant(expr, params) for expr in row_exprs
                )
                db.insert(stmt.table, values)
                count += 1
        return count
    if isinstance(stmt, AnalyzeStmt):
        return db.analyze(stmt.table)
    raise PlanningError(f"unsupported statement {stmt!r}")  # pragma: no cover


def _eval_constant(expr: Expr, params: dict):
    from repro.minidb.expr import RowLayout

    fn = compile_expr(expr, RowLayout(), lambda name: _no_udf(name), params)
    return fn(())


def eval_constant(expr: Expr, params: dict):
    """Evaluate a row-free constant expression (INSERT values).

    Public entry for callers that must see a statement's values before
    execution — the cluster's sharded service uses it to decide row
    ownership without running the insert.
    """
    return _eval_constant(expr, params)


def _no_udf(name: str):
    raise PlanningError(f"function {name!r} not allowed in constants")


# ----------------------------------------------------------- select plan

def plan_select(
    db: Database, stmt: SelectStmt, params: dict
) -> PhysicalOp:
    """Build the physical plan for a SELECT."""
    if not stmt.tables:
        raise PlanningError("SELECT requires a FROM clause")
    aliases = [t.alias.lower() for t in stmt.tables]
    if len(set(aliases)) != len(aliases):
        raise PlanningError("duplicate table aliases in FROM")

    where = _lower_lexequal(stmt.where) if stmt.where else None
    having = _lower_lexequal(stmt.having) if stmt.having else None

    conjuncts = _split_conjuncts(where)
    single, joins, residual = _classify_conjuncts(
        conjuncts, {t.alias.lower() for t in stmt.tables}
    )

    # Per-table access paths with pushed-down filters.
    plans: dict[str, PhysicalOp] = {}
    for table_ref in stmt.tables:
        table = db.table(table_ref.name)
        alias = table_ref.alias
        table_conjuncts = single.get(alias.lower(), [])
        plan = _access_path(db, table, alias, table_conjuncts, params)
        plans[alias.lower()] = plan

    # Left-deep join tree in FROM order.
    plan = plans[aliases[0]]
    joined = {aliases[0]}
    remaining_joins = list(joins)
    for alias in aliases[1:]:
        plan_aliases = joined | {alias}
        usable = [
            j
            for j in remaining_joins
            if j.left_alias in plan_aliases
            and j.right_alias in plan_aliases
            and (j.left_alias == alias or j.right_alias == alias)
        ]
        next_plan = plans[alias]
        if usable:
            join = usable[0]
            remaining_joins.remove(join)
            if join.right_alias == alias:
                outer_ref, inner_ref = join.left_ref, join.right_ref
            else:
                outer_ref, inner_ref = join.right_ref, join.left_ref
            outer_fn = _key_fn(plan, outer_ref, db, params)
            inner_fn = _key_fn(next_plan, inner_ref, db, params)
            plan = HashJoin(plan, next_plan, outer_fn, inner_fn)
        else:
            plan = NestedLoopJoin(plan, next_plan)
        joined.add(alias)
    # Join conjuncts not used as hash keys + residuals become filters.
    leftovers = [j.expr for j in remaining_joins] + residual
    for expr in leftovers:
        plan = Filter(plan, expr, db.udf, params)

    group_needed = bool(stmt.group_by) or any(
        item.expr is not None and contains_aggregate(item.expr)
        for item in stmt.items
    ) or (having is not None and contains_aggregate(having))

    select_outputs = _expand_items(stmt, plan, db)

    order_exprs = [e for e, _d in stmt.order_by]
    if group_needed:
        plan, select_outputs, having, order_exprs = _plan_grouping(
            db, plan, stmt, select_outputs, having, order_exprs, params
        )
        if having is not None:
            plan = Filter(plan, having, db.udf, params)
    elif having is not None:
        plan = Filter(plan, having, db.udf, params)

    # Projection with hidden sort keys, sort, then strip the extras.
    sort_specs = list(zip(order_exprs, [d for _e, d in stmt.order_by]))
    hidden = [(expr, f"__sort{i}") for i, (expr, _d) in enumerate(sort_specs)]
    outputs = select_outputs + hidden
    plan = Project(plan, outputs, db.udf, params)
    if sort_specs:
        sort_keys = [
            (ColumnRef("q", f"__sort{i}"), desc)
            for i, (_expr, desc) in enumerate(sort_specs)
        ]
        plan = Sort(plan, sort_keys, db.udf, params)
    if hidden:
        visible = [
            (ColumnRef("q", name), name) for _e, name in select_outputs
        ]
        plan = Project(plan, visible, db.udf, params)
    if stmt.distinct:
        plan = Distinct(plan)
    if stmt.limit is not None:
        plan = Limit(plan, stmt.limit)
    return plan


@dataclass
class _JoinConjunct:
    expr: Expr
    left_alias: str
    right_alias: str
    left_ref: ColumnRef
    right_ref: ColumnRef


def _split_conjuncts(expr: Expr | None) -> list[Expr]:
    if expr is None:
        return []
    if isinstance(expr, BoolOp) and expr.op == "AND":
        result: list[Expr] = []
        for term in expr.terms:
            result.extend(_split_conjuncts(term))
        return result
    return [expr]


def _aliases_of(expr: Expr, known: set[str]) -> set[str] | None:
    """Aliases referenced by ``expr``; None if an unqualified ref occurs."""
    found: set[str] = set()
    for node in walk(expr):
        if isinstance(node, ColumnRef):
            if node.table is None:
                return None
            if node.table.lower() in known:
                found.add(node.table.lower())
    return found


def _classify_conjuncts(
    conjuncts: list[Expr], known_aliases: set[str]
) -> tuple[dict[str, list[Expr]], list[_JoinConjunct], list[Expr]]:
    single: dict[str, list[Expr]] = {}
    joins: list[_JoinConjunct] = []
    residual: list[Expr] = []
    only_alias = next(iter(known_aliases)) if len(known_aliases) == 1 else None
    for expr in conjuncts:
        aliases = _aliases_of(expr, known_aliases)
        if aliases is None:
            # Unqualified references: safe to treat as single-table only
            # in single-table queries.
            if only_alias is not None:
                single.setdefault(only_alias, []).append(expr)
            else:
                residual.append(expr)
            continue
        if len(aliases) == 0:
            residual.append(expr)
        elif len(aliases) == 1:
            single.setdefault(aliases.pop(), []).append(expr)
        elif (
            len(aliases) == 2
            and isinstance(expr, BinaryOp)
            and expr.op == "="
            and isinstance(expr.left, ColumnRef)
            and isinstance(expr.right, ColumnRef)
        ):
            left, right = expr.left, expr.right
            assert left.table is not None and right.table is not None
            joins.append(
                _JoinConjunct(
                    expr=expr,
                    left_alias=left.table.lower(),
                    right_alias=right.table.lower(),
                    left_ref=left,
                    right_ref=right,
                )
            )
        else:
            residual.append(expr)
    return single, joins, residual


def _access_path(
    db: Database,
    table: HeapTable,
    alias: str,
    conjuncts: list[Expr],
    params: dict,
) -> PhysicalOp:
    """Choose scan type for one table and apply its pushed-down filters.

    Every access path (and the pushed-down filters above it) is
    annotated with ``est_rows``/``est_cost`` — from the stats catalog
    when ANALYZE has run, from live structure sizes otherwise — so
    EXPLAIN shows what the planner believed next to what happened.
    """
    plan: PhysicalOp | None = None
    rest = conjuncts
    row_count = len(table)
    for expr in conjuncts:
        match = _index_equality(db, table, expr, params)
        if match is not None:
            tree, key = match
            plan = IndexEqualScan(table, tree, key, alias=alias)
            plan.est_rows = _index_equality_rows(db, table, expr)
            plan.est_cost = 8.0 + plan.est_rows
            rest = [c for c in conjuncts if c is not expr]
            break
    if plan is None:
        # Inside-the-engine LexEQUAL acceleration: a registered
        # accelerator turns a lowered lexequal(col, const, ...) conjunct
        # into a candidate rowid list; the conjunct itself stays in the
        # filter chain, so candidates are always rechecked by the UDF.
        for expr in conjuncts:
            accelerated = _accelerated_candidates(db, table, expr, params)
            if accelerated is not None:
                from repro.minidb.executor import RowidScan

                rowids, source, estimate = accelerated
                obs.incr("minidb.plans.accelerated")
                obs.observe("minidb.accelerator.candidates", len(rowids))
                plan = RowidScan(table, rowids, alias=alias, source=source)
                if estimate is not None:
                    plan.est_rows = estimate.est_rows
                    plan.est_cost = estimate.est_cost
                else:
                    plan.est_rows = float(len(rowids))
                    plan.est_cost = float(len(rowids))
                break
    if plan is None:
        plan = SeqScan(table, alias=alias)
        plan.est_rows = float(row_count)
        plan.est_cost = float(row_count)
    for expr in rest:
        child = plan
        plan = Filter(plan, expr, db.udf, params)
        if child.est_rows is not None:
            plan.est_rows = child.est_rows * _filter_selectivity(expr)
            plan.est_cost = (child.est_cost or 0.0) + child.est_rows
    return plan


def _index_equality_rows(db: Database, table: HeapTable, expr: Expr) -> float:
    """Estimated rows for ``col = const`` via ANALYZE's distinct counts."""
    for node in walk(expr):
        if isinstance(node, ColumnRef):
            cstats = db.stats.column(table.name, node.column)
            if cstats is not None and cstats.n_distinct > 0:
                return max(1.0, len(table) / cstats.n_distinct)
    return 1.0


def _filter_selectivity(expr: Expr) -> float:
    """Crude textbook selectivities for pushed-down filter conjuncts."""
    if isinstance(expr, FuncCall) and expr.name.lower() == "lexequal":
        return 0.05  # approximate-match predicates are selective
    if isinstance(expr, BinaryOp) and expr.op == "=":
        return 0.1
    return 0.33


def _accelerated_candidates(
    db: Database, table: HeapTable, expr: Expr, params: dict
):
    """``(candidate rowids, source label, estimate)`` for a
    ``lexequal(col, const, e, langs)`` conjunct.

    ``estimate`` is the accelerator's
    :class:`~repro.minidb.cost.StrategyEstimate` for the chosen method
    (None for accelerators predating the cost model).  Returns None when
    the conjunct has a different shape, no accelerator is registered, or
    the accelerator declines.
    """
    if not (
        isinstance(expr, FuncCall)
        and expr.name.lower() == "lexequal"
        and len(expr.args) >= 2
        and isinstance(expr.args[0], ColumnRef)
        and all(_is_constant(arg) for arg in expr.args[1:])
    ):
        return None
    ref = expr.args[0]
    if not table.schema.has_column(ref.column):
        return None
    accelerator = db.accelerator_for(table.name, ref.column)
    if accelerator is None:
        return None
    value = _eval_constant(expr.args[1], params)
    threshold = (
        _eval_constant(expr.args[2], params) if len(expr.args) > 2 else None
    )
    languages_csv = (
        _eval_constant(expr.args[3], params) if len(expr.args) > 3 else ""
    )
    languages = tuple(
        lang.strip().lower()
        for lang in str(languages_csv or "").split(",")
        if lang.strip()
    )
    rowids = accelerator.candidate_rowids(value, threshold, languages)
    if rowids is None:
        return None
    method = getattr(accelerator, "method", None)
    # An auto accelerator reports the concrete method it chose; the
    # label keeps the "via <method> accelerator" shape with the choice
    # mode appended, so plans stay attributable either way.
    chosen = getattr(accelerator, "last_method", None)
    if method == "auto" and chosen:
        source = f"{chosen} accelerator (auto)"
    elif method:
        source = f"{method} accelerator"
    else:
        source = "accelerator"
    return rowids, source, getattr(accelerator, "last_choice", None)


def _index_equality(
    db: Database, table: HeapTable, expr: Expr, params: dict
):
    """If ``expr`` is ``col = constant`` and an index exists, return it."""
    if not (isinstance(expr, BinaryOp) and expr.op == "="):
        return None
    ref, const = None, None
    if isinstance(expr.left, ColumnRef) and _is_constant(expr.right):
        ref, const = expr.left, expr.right
    elif isinstance(expr.right, ColumnRef) and _is_constant(expr.left):
        ref, const = expr.right, expr.left
    if ref is None or const is None:
        return None
    if not table.schema.has_column(ref.column):
        return None
    info = db.index_on(table.name, ref.column)
    if info is None:
        return None
    return info.tree, _eval_constant(const, params)


def _is_constant(expr: Expr) -> bool:
    return all(isinstance(n, (Literal, Param)) for n in walk(expr))


def _key_fn(plan: PhysicalOp, ref: ColumnRef, db: Database, params: dict):
    fn = compile_expr(ref, plan.layout, db.udf, params)
    return fn


def _lower_lexequal(expr: Expr) -> Expr:
    """Rewrite LexEqual nodes into calls of the registered ``lexequal`` UDF.

    The language restriction travels as a comma-separated literal in the
    fourth argument (empty string = wildcard), mirroring how the paper's
    UDF deployment passes everything through standard SQL types.
    """
    if isinstance(expr, LexEqual):
        langs = Literal(",".join(expr.languages))
        return FuncCall(
            "lexequal",
            (
                _lower_lexequal(expr.left),
                _lower_lexequal(expr.right),
                _lower_lexequal(expr.threshold),
                langs,
            ),
        )
    if isinstance(expr, BoolOp):
        return BoolOp(expr.op, tuple(_lower_lexequal(t) for t in expr.terms))
    if isinstance(expr, UnaryOp):
        return UnaryOp(expr.op, _lower_lexequal(expr.operand))
    if isinstance(expr, BinaryOp):
        return BinaryOp(
            expr.op, _lower_lexequal(expr.left), _lower_lexequal(expr.right)
        )
    if isinstance(expr, Between):
        return Between(
            _lower_lexequal(expr.value),
            _lower_lexequal(expr.low),
            _lower_lexequal(expr.high),
            expr.negated,
        )
    if isinstance(expr, InList):
        return InList(
            _lower_lexequal(expr.value),
            tuple(_lower_lexequal(i) for i in expr.items),
            expr.negated,
        )
    if isinstance(expr, IsNull):
        return IsNull(_lower_lexequal(expr.value), expr.negated)
    if isinstance(expr, FuncCall):
        return FuncCall(
            expr.name, tuple(_lower_lexequal(a) for a in expr.args)
        )
    if isinstance(expr, Aggregate):
        if expr.arg is None:
            return expr
        return Aggregate(expr.func, _lower_lexequal(expr.arg))
    return expr


# --------------------------------------------------------------- select


def _expand_items(
    stmt: SelectStmt, plan: PhysicalOp, db: Database
) -> list[tuple[Expr, str]]:
    """Expand ``*`` / ``alias.*`` and name every select output."""
    outputs: list[tuple[Expr, str]] = []
    used_names: set[str] = set()

    def unique(name: str) -> str:
        base = name
        i = 1
        while name.lower() in used_names:
            i += 1
            name = f"{base}_{i}"
        used_names.add(name.lower())
        return name

    for idx, item in enumerate(stmt.items):
        if item.expr is None:
            for qualified in plan.layout.names:
                alias, col = qualified.split(".", 1)
                if item.star_table and alias.lower() != item.star_table.lower():
                    continue
                outputs.append((ColumnRef(alias, col), unique(col)))
            if item.star_table and not any(
                name.split(".", 1)[0].lower() == item.star_table.lower()
                for name in plan.layout.names
            ):
                raise PlanningError(
                    f"unknown alias {item.star_table!r} in select list"
                )
            continue
        if item.alias:
            name = item.alias
        elif isinstance(item.expr, ColumnRef):
            name = item.expr.column
        else:
            name = f"col{idx + 1}"
        outputs.append((item.expr, unique(name)))
    return outputs


def _output_names(stmt: SelectStmt, db: Database) -> list[str]:
    """Output column names (mirrors :func:`_expand_items` naming)."""
    # Recompute cheaply: names depend only on the statement and schemas.
    names: list[str] = []
    used: set[str] = set()

    def unique(name: str) -> str:
        base = name
        i = 1
        while name.lower() in used:
            i += 1
            name = f"{base}_{i}"
        used.add(name.lower())
        return name

    for idx, item in enumerate(stmt.items):
        if item.expr is None:
            for table_ref in stmt.tables:
                if (
                    item.star_table
                    and table_ref.alias.lower() != item.star_table.lower()
                ):
                    continue
                schema = db.table(table_ref.name).schema
                for col in schema.column_names:
                    names.append(unique(col))
            continue
        if item.alias:
            names.append(unique(item.alias))
        elif isinstance(item.expr, ColumnRef):
            names.append(unique(item.expr.column))
        else:
            names.append(unique(f"col{idx + 1}"))
    return names


def _plan_grouping(
    db: Database,
    plan: PhysicalOp,
    stmt: SelectStmt,
    select_outputs: list[tuple[Expr, str]],
    having: Expr | None,
    order_exprs: list[Expr],
    params: dict,
):
    """Insert a GroupBy and rewrite downstream expressions onto its slots."""
    group_exprs = list(stmt.group_by)
    aggregates: list[Aggregate] = []

    def rewrite(expr: Expr) -> Expr:
        for i, g in enumerate(group_exprs):
            if expr == g:
                return ColumnRef("g", f"k{i}")
        if isinstance(expr, Aggregate):
            for j, existing in enumerate(aggregates):
                if existing == expr:
                    return ColumnRef("g", f"a{j}")
            aggregates.append(expr)
            return ColumnRef("g", f"a{len(aggregates) - 1}")
        if isinstance(expr, ColumnRef):
            raise PlanningError(
                f"column {expr.column!r} must appear in GROUP BY or "
                "inside an aggregate"
            )
        if isinstance(expr, BoolOp):
            return BoolOp(expr.op, tuple(rewrite(t) for t in expr.terms))
        if isinstance(expr, UnaryOp):
            return UnaryOp(expr.op, rewrite(expr.operand))
        if isinstance(expr, BinaryOp):
            return BinaryOp(expr.op, rewrite(expr.left), rewrite(expr.right))
        if isinstance(expr, Between):
            return Between(
                rewrite(expr.value),
                rewrite(expr.low),
                rewrite(expr.high),
                expr.negated,
            )
        if isinstance(expr, InList):
            return InList(
                rewrite(expr.value),
                tuple(rewrite(i) for i in expr.items),
                expr.negated,
            )
        if isinstance(expr, IsNull):
            return IsNull(rewrite(expr.value), expr.negated)
        if isinstance(expr, FuncCall):
            return FuncCall(expr.name, tuple(rewrite(a) for a in expr.args))
        return expr

    new_outputs = [(rewrite(expr), name) for expr, name in select_outputs]
    new_having = rewrite(having) if having is not None else None
    new_order = [rewrite(e) for e in order_exprs]
    grouped = GroupBy(plan, group_exprs, aggregates, db.udf, params)
    return grouped, new_outputs, new_having, new_order
