"""``minidb`` — a small in-memory relational engine.

The paper evaluates LexEQUAL inside a commercial database (Oracle 9i) as
a PL/SQL UDF; this package is the self-contained substitute.  It provides
the facilities that evaluation depends on:

* heap tables with typed schemas (:mod:`repro.minidb.table`);
* B+ tree secondary indexes with point and range scans
  (:mod:`repro.minidb.btree`);
* an expression language with user-defined functions
  (:mod:`repro.minidb.expr`);
* iterator-model physical operators — sequential and index scans,
  filters, nested-loop / index-nested-loop / hash joins, grouping with
  HAVING, sorting (:mod:`repro.minidb.executor`);
* a SQL dialect with the paper's ``LexEQUAL ... THRESHOLD ...
  INLANGUAGES {...}`` extension (:mod:`repro.minidb.sql`) and a
  rule-based planner (:mod:`repro.minidb.planner`).

The engine is deliberately "outside-the-server"-shaped: LexEQUAL is
installed as a UDF (:mod:`repro.core.integration`) exactly as the paper
did, and the q-gram / phonetic-index accelerations are expressed as
ordinary SQL over auxiliary tables, as in paper Figures 14 and 15.
"""

from repro.minidb.values import SqlType, LangText
from repro.minidb.schema import Column, TableSchema
from repro.minidb.table import HeapTable
from repro.minidb.btree import BPlusTree
from repro.minidb.catalog import Database

__all__ = [
    "SqlType",
    "LangText",
    "Column",
    "TableSchema",
    "HeapTable",
    "BPlusTree",
    "Database",
]
