"""SQL value types for the minidb engine.

Values are plain Python objects (``int``, ``float``, ``str``, ``bool``,
``None``) plus :class:`LangText`, the language-tagged text type the paper
assumes for multilingual columns ("the data is assumed to be in Unicode
with each attribute value tagged with its language").
"""

from __future__ import annotations

import enum
from typing import NamedTuple

from repro.errors import SchemaError


class LangText(NamedTuple):
    """A Unicode string tagged with its language.

    Compares (and hashes) like the pair, so it can be grouped and joined.
    ``str(LangText("नेहरु", "hindi"))`` is just the text.
    """

    text: str
    language: str

    def __str__(self) -> str:
        return self.text


class SqlType(enum.Enum):
    """Column types supported by the engine."""

    INTEGER = "integer"
    REAL = "real"
    TEXT = "text"
    BOOLEAN = "boolean"
    LANGTEXT = "langtext"

    def validate(self, value: object) -> object:
        """Check (and mildly coerce) a Python value for this column type.

        ``None`` is always accepted (SQL NULL).  Integers are accepted
        for REAL columns and coerced to float; everything else must match
        exactly — the engine favours loud failures over silent coercion.
        """
        if value is None:
            return None
        if self is SqlType.INTEGER:
            if isinstance(value, bool) or not isinstance(value, int):
                raise SchemaError(f"expected INTEGER, got {value!r}")
            return value
        if self is SqlType.REAL:
            if isinstance(value, bool):
                raise SchemaError(f"expected REAL, got {value!r}")
            if isinstance(value, int):
                return float(value)
            if not isinstance(value, float):
                raise SchemaError(f"expected REAL, got {value!r}")
            return value
        if self is SqlType.TEXT:
            if isinstance(value, LangText):
                return value.text
            if not isinstance(value, str):
                raise SchemaError(f"expected TEXT, got {value!r}")
            return value
        if self is SqlType.BOOLEAN:
            if not isinstance(value, bool):
                raise SchemaError(f"expected BOOLEAN, got {value!r}")
            return value
        if self is SqlType.LANGTEXT:
            if isinstance(value, LangText):
                return value
            raise SchemaError(f"expected LANGTEXT, got {value!r}")
        raise AssertionError(f"unhandled type {self}")  # pragma: no cover
