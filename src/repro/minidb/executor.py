"""Iterator-model physical operators.

Every operator exposes a :class:`~repro.minidb.expr.RowLayout` describing
its output tuples and a re-iterable :meth:`rows` generator.  Plans are
trees of these operators; the planner (:mod:`repro.minidb.planner`)
assembles them from SQL, and :mod:`repro.core.strategies` assembles them
directly for the accelerated LexEQUAL paths.

The operator set matches what the paper's queries need: sequential scans
(Table 1's full-scan UDF baseline), B+ tree equality/range scans (the
phonetic index of Figure 15), hash joins (the q-gram self-join of
Figure 14), index nested-loop joins, grouping with HAVING (the count
filter), plus the usual filter/project/sort/limit/distinct.
"""

from __future__ import annotations

import abc
from collections.abc import Callable, Iterator, Sequence

from repro.errors import ExecutionError
from repro.minidb.btree import BPlusTree
from repro.minidb.expr import (
    Aggregate,
    Compiled,
    Expr,
    RowLayout,
    compile_expr,
    format_expr,
)
from repro.minidb.table import HeapTable

#: Resolver for UDF names (from the catalog).
UdfResolver = Callable[[str], Callable]


class PhysicalOp(abc.ABC):
    """Base class for physical operators."""

    layout: RowLayout

    #: Planner cost annotations (cost-based planning, DESIGN.md §10.5):
    #: estimated output rows and cumulative cost in DP-cell equivalents
    #: (:mod:`repro.minidb.cost`).  None = the planner had no estimate;
    #: EXPLAIN renders them next to the actual counts when present.
    est_rows: float | None = None
    est_cost: float | None = None

    @abc.abstractmethod
    def rows(self) -> Iterator[tuple]:
        """Yield output rows.  Must be callable repeatedly."""

    def __iter__(self) -> Iterator[tuple]:
        return self.rows()

    def children(self) -> tuple["PhysicalOp", ...]:
        """Child operators, in plan order (for EXPLAIN tree walks)."""
        return ()

    def describe(self) -> str:
        """One-line operator description for EXPLAIN output."""
        return type(self).__name__


class SeqScan(PhysicalOp):
    """Full scan of a heap table under an alias."""

    def __init__(self, table: HeapTable, alias: str | None = None):
        self.table = table
        self.alias = alias or table.name
        self.layout = RowLayout.for_table(
            self.alias, table.schema.column_names
        )

    def rows(self) -> Iterator[tuple]:
        yield from self.table.rows()

    def describe(self) -> str:
        text = f"SeqScan on {self.table.name}"
        if self.alias != self.table.name:
            text += f" as {self.alias}"
        return text


class IndexEqualScan(PhysicalOp):
    """B+ tree point lookup: rows of ``table`` where ``column = key``."""

    def __init__(
        self,
        table: HeapTable,
        tree: BPlusTree,
        key: object,
        alias: str | None = None,
    ):
        self.table = table
        self.tree = tree
        self.key = key
        self.alias = alias or table.name
        self.layout = RowLayout.for_table(
            self.alias, table.schema.column_names
        )

    def rows(self) -> Iterator[tuple]:
        for rowid in self.tree.search(self.key):
            yield self.table.fetch(rowid)

    def describe(self) -> str:
        text = f"IndexEqualScan on {self.table.name}"
        if self.alias != self.table.name:
            text += f" as {self.alias}"
        return f"{text} (key = {self.key!r})"


class IndexRangeScan(PhysicalOp):
    """B+ tree range scan: rows with ``low <= column <= high``."""

    def __init__(
        self,
        table: HeapTable,
        tree: BPlusTree,
        low: object = None,
        high: object = None,
        *,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
        alias: str | None = None,
    ):
        self.table = table
        self.tree = tree
        self.low = low
        self.high = high
        self.low_inclusive = low_inclusive
        self.high_inclusive = high_inclusive
        self.alias = alias or table.name
        self.layout = RowLayout.for_table(
            self.alias, table.schema.column_names
        )

    def rows(self) -> Iterator[tuple]:
        for _key, rowid in self.tree.range_scan(
            self.low,
            self.high,
            low_inclusive=self.low_inclusive,
            high_inclusive=self.high_inclusive,
        ):
            yield self.table.fetch(rowid)

    def describe(self) -> str:
        text = f"IndexRangeScan on {self.table.name}"
        if self.alias != self.table.name:
            text += f" as {self.alias}"
        return f"{text} ({self.low!r} .. {self.high!r})"


class RowidScan(PhysicalOp):
    """Fetch an explicit rowid list from a heap table.

    The access path produced by predicate accelerators: the accelerator
    supplies candidate rowids, the residual predicate rechecks them.
    ``source`` names where the rowids came from (e.g. which accelerator
    method), so EXPLAIN can attribute the pruning.
    """

    def __init__(
        self,
        table: HeapTable,
        rowids: Sequence[int],
        alias: str | None = None,
        source: str | None = None,
    ):
        self.table = table
        self.rowids = list(rowids)
        self.alias = alias or table.name
        self.source = source
        self.layout = RowLayout.for_table(
            self.alias, table.schema.column_names
        )

    def rows(self) -> Iterator[tuple]:
        fetch = self.table.fetch
        for rowid in self.rowids:
            yield fetch(rowid)

    def describe(self) -> str:
        text = f"RowidScan on {self.table.name}"
        if self.alias != self.table.name:
            text += f" as {self.alias}"
        if self.source:
            text += f" via {self.source}"
        return f"{text} (candidates={len(self.rowids)})"


class Filter(PhysicalOp):
    """Keep rows for which the predicate is SQL-true."""

    def __init__(
        self,
        child: PhysicalOp,
        predicate: Expr,
        udfs: UdfResolver,
        params: dict | None = None,
    ):
        self.child = child
        self.layout = child.layout
        self.predicate_expr = predicate
        self._predicate: Compiled = compile_expr(
            predicate, child.layout, udfs, params
        )

    def rows(self) -> Iterator[tuple]:
        predicate = self._predicate
        for row in self.child.rows():
            if predicate(row) is True:
                yield row

    def children(self) -> tuple[PhysicalOp, ...]:
        return (self.child,)

    def describe(self) -> str:
        return f"Filter: {format_expr(self.predicate_expr)}"


class FnFilter(PhysicalOp):
    """Filter by a plain Python callable (for programmatic plans)."""

    def __init__(
        self,
        child: PhysicalOp,
        fn: Callable[[tuple], bool],
        label: str | None = None,
    ):
        self.child = child
        self.layout = child.layout
        self.label = label
        self._fn = fn

    def rows(self) -> Iterator[tuple]:
        fn = self._fn
        for row in self.child.rows():
            if fn(row):
                yield row

    def children(self) -> tuple[PhysicalOp, ...]:
        return (self.child,)

    def describe(self) -> str:
        return f"FnFilter: {self.label}" if self.label else "FnFilter"


class Project(PhysicalOp):
    """Evaluate output expressions; names become the new layout."""

    def __init__(
        self,
        child: PhysicalOp,
        outputs: Sequence[tuple[Expr, str]],
        udfs: UdfResolver,
        params: dict | None = None,
        alias: str = "q",
    ):
        self.child = child
        self._exprs: list[Compiled] = [
            compile_expr(expr, child.layout, udfs, params)
            for expr, _name in outputs
        ]
        self.layout = RowLayout()
        for _expr, name in outputs:
            self.layout.add(alias, name)
        self.output_names = [name for _expr, name in outputs]

    def rows(self) -> Iterator[tuple]:
        exprs = self._exprs
        for row in self.child.rows():
            yield tuple(fn(row) for fn in exprs)

    def children(self) -> tuple[PhysicalOp, ...]:
        return (self.child,)

    def describe(self) -> str:
        names = ", ".join(self.output_names)
        if len(names) > 60:
            names = names[:57] + "..."
        return f"Project: {names}"


class NestedLoopJoin(PhysicalOp):
    """Cartesian product with an optional residual predicate.

    The inner input is materialized once — this is the "nested-loop
    technique" the paper's optimizer chose for the UDF join, and the
    baseline the q-gram and phonetic-index joins beat.
    """

    def __init__(
        self,
        outer: PhysicalOp,
        inner: PhysicalOp,
        predicate: Expr | None = None,
        udfs: UdfResolver | None = None,
        params: dict | None = None,
    ):
        self.outer = outer
        self.inner = inner
        self.layout = outer.layout.merge(inner.layout)
        self.predicate_expr = predicate
        self._predicate: Compiled | None = None
        if predicate is not None:
            if udfs is None:
                raise ExecutionError("join predicate requires udf resolver")
            self._predicate = compile_expr(
                predicate, self.layout, udfs, params
            )

    def rows(self) -> Iterator[tuple]:
        inner_rows = list(self.inner.rows())
        predicate = self._predicate
        for outer_row in self.outer.rows():
            for inner_row in inner_rows:
                combined = outer_row + inner_row
                if predicate is None or predicate(combined) is True:
                    yield combined

    def children(self) -> tuple[PhysicalOp, ...]:
        return (self.outer, self.inner)

    def describe(self) -> str:
        if self.predicate_expr is not None:
            return (
                "NestedLoopJoin: "
                f"{format_expr(self.predicate_expr)}"
            )
        return "NestedLoopJoin"


class IndexNestedLoopJoin(PhysicalOp):
    """For each outer row, probe a B+ tree index on the inner table.

    This is the plan shape of the phonetic-index join (paper Figure 15):
    the equality on GroupedPhonStringID becomes an index probe and the
    expensive predicate runs only on index hits.
    """

    def __init__(
        self,
        outer: PhysicalOp,
        inner_table: HeapTable,
        inner_tree: BPlusTree,
        outer_key: Callable[[tuple], object],
        inner_alias: str | None = None,
    ):
        self.outer = outer
        self.inner_table = inner_table
        self.inner_tree = inner_tree
        self.outer_key = outer_key
        alias = inner_alias or inner_table.name
        inner_layout = RowLayout.for_table(
            alias, inner_table.schema.column_names
        )
        self.layout = outer.layout.merge(inner_layout)

    def rows(self) -> Iterator[tuple]:
        fetch = self.inner_table.fetch
        search = self.inner_tree.search
        key_of = self.outer_key
        for outer_row in self.outer.rows():
            key = key_of(outer_row)
            if key is None:
                continue
            for rowid in search(key):
                yield outer_row + fetch(rowid)

    def children(self) -> tuple[PhysicalOp, ...]:
        return (self.outer,)

    def describe(self) -> str:
        return (
            f"IndexNestedLoopJoin: B+ tree probe into "
            f"{self.inner_table.name}"
        )


class HashJoin(PhysicalOp):
    """Equi-join via a hash table on the build (right) input."""

    def __init__(
        self,
        left: PhysicalOp,
        right: PhysicalOp,
        left_key: Callable[[tuple], object],
        right_key: Callable[[tuple], object],
    ):
        self.left = left
        self.right = right
        self.left_key = left_key
        self.right_key = right_key
        self.layout = left.layout.merge(right.layout)

    def rows(self) -> Iterator[tuple]:
        table: dict[object, list[tuple]] = {}
        key_of_right = self.right_key
        for row in self.right.rows():
            key = key_of_right(row)
            if key is None:
                continue  # SQL equality never matches on NULL
            table.setdefault(key, []).append(row)
        key_of_left = self.left_key
        for left_row in self.left.rows():
            matches = table.get(key_of_left(left_row))
            if matches:
                for right_row in matches:
                    yield left_row + right_row

    def children(self) -> tuple[PhysicalOp, ...]:
        return (self.left, self.right)

    def describe(self) -> str:
        return "HashJoin"


def _agg_init(func: str):
    if func == "COUNT":
        return 0
    if func == "AVG":
        return (0.0, 0)
    return None  # SUM / MIN / MAX start as NULL


def _agg_step(func: str, state, value):
    if func == "COUNT":
        # COUNT(*) feeds value=True for every row; COUNT(expr) feeds the
        # expression value and skips NULLs.
        return state + (0 if value is None else 1)
    if value is None:
        return state
    if func == "SUM":
        return value if state is None else state + value
    if func == "MIN":
        return value if state is None or value < state else state
    if func == "MAX":
        return value if state is None or value > state else state
    if func == "AVG":
        total, count = state
        return (total + value, count + 1)
    raise ExecutionError(f"unknown aggregate {func!r}")


def _agg_final(func: str, state):
    if func == "AVG":
        total, count = state
        return None if count == 0 else total / count
    return state


class GroupBy(PhysicalOp):
    """Hash aggregation with HAVING support.

    Output rows are ``(*group_values, *aggregate_values)`` with layout
    names ``g.k0.. g.a0..``; the planner rewrites SELECT/HAVING
    expressions to reference these slots.  With no group keys, a single
    global group is produced (even over empty input, per SQL).
    """

    def __init__(
        self,
        child: PhysicalOp,
        group_exprs: Sequence[Expr],
        aggregates: Sequence[Aggregate],
        udfs: UdfResolver,
        params: dict | None = None,
    ):
        self.child = child
        self.group_exprs = list(group_exprs)
        self._group_fns = [
            compile_expr(e, child.layout, udfs, params) for e in group_exprs
        ]
        self._aggs = list(aggregates)
        self._agg_arg_fns: list[Compiled | None] = [
            None
            if agg.arg is None
            else compile_expr(agg.arg, child.layout, udfs, params)
            for agg in aggregates
        ]
        self.layout = RowLayout()
        for i in range(len(group_exprs)):
            self.layout.add("g", f"k{i}")
        for i in range(len(aggregates)):
            self.layout.add("g", f"a{i}")

    def rows(self) -> Iterator[tuple]:
        groups: dict[tuple, list] = {}
        group_fns = self._group_fns
        aggs = self._aggs
        arg_fns = self._agg_arg_fns
        for row in self.child.rows():
            key = tuple(fn(row) for fn in group_fns)
            state = groups.get(key)
            if state is None:
                state = [_agg_init(a.func) for a in aggs]
                groups[key] = state
            for i, agg in enumerate(aggs):
                arg_fn = arg_fns[i]
                value = True if arg_fn is None else arg_fn(row)
                state[i] = _agg_step(agg.func, state[i], value)
        if not groups and not group_fns:
            groups[()] = [_agg_init(a.func) for a in aggs]
        for key, state in groups.items():
            finals = tuple(
                _agg_final(agg.func, s) for agg, s in zip(aggs, state)
            )
            yield key + finals

    def children(self) -> tuple[PhysicalOp, ...]:
        return (self.child,)

    def describe(self) -> str:
        parts = []
        if self.group_exprs:
            keys = ", ".join(format_expr(e) for e in self.group_exprs)
            parts.append(f"keys: {keys}")
        if self._aggs:
            aggs = ", ".join(format_expr(a) for a in self._aggs)
            parts.append(f"aggregates: {aggs}")
        return "GroupBy" + (f" ({'; '.join(parts)})" if parts else "")


class _NullsFirst:
    """Sort key wrapper ordering NULL before every non-NULL value."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def __lt__(self, other: "_NullsFirst") -> bool:
        if self.value is None:
            return other.value is not None
        if other.value is None:
            return False
        return self.value < other.value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _NullsFirst) and self.value == other.value


def _null_safe_key(value) -> _NullsFirst:
    return _NullsFirst(value)


class Sort(PhysicalOp):
    """Materializing sort by one or more expressions."""

    def __init__(
        self,
        child: PhysicalOp,
        sort_keys: Sequence[tuple[Expr, bool]],  # (expr, descending)
        udfs: UdfResolver,
        params: dict | None = None,
    ):
        self.child = child
        self.layout = child.layout
        self.sort_key_exprs = list(sort_keys)
        self._keys = [
            (compile_expr(expr, child.layout, udfs, params), desc)
            for expr, desc in sort_keys
        ]

    def rows(self) -> Iterator[tuple]:
        data = list(self.child.rows())
        # Stable multi-key sort: apply keys right-to-left.  NULLs sort
        # first ascending (and therefore last descending).
        for fn, desc in reversed(self._keys):
            data.sort(
                key=lambda row, fn=fn: _null_safe_key(fn(row)),
                reverse=desc,
            )
        yield from data

    def children(self) -> tuple[PhysicalOp, ...]:
        return (self.child,)

    def describe(self) -> str:
        keys = ", ".join(
            format_expr(expr) + (" DESC" if desc else "")
            for expr, desc in self.sort_key_exprs
        )
        return f"Sort: {keys}"


class Limit(PhysicalOp):
    def __init__(self, child: PhysicalOp, limit: int):
        if limit < 0:
            raise ExecutionError(f"LIMIT must be >= 0, got {limit}")
        self.child = child
        self.layout = child.layout
        self.limit = limit

    def rows(self) -> Iterator[tuple]:
        count = 0
        for row in self.child.rows():
            if count >= self.limit:
                return
            yield row
            count += 1

    def children(self) -> tuple[PhysicalOp, ...]:
        return (self.child,)

    def describe(self) -> str:
        return f"Limit: {self.limit}"


class Distinct(PhysicalOp):
    def __init__(self, child: PhysicalOp):
        self.child = child
        self.layout = child.layout

    def rows(self) -> Iterator[tuple]:
        seen: set = set()
        for row in self.child.rows():
            if row not in seen:
                seen.add(row)
                yield row

    def children(self) -> tuple[PhysicalOp, ...]:
        return (self.child,)


class Materialize(PhysicalOp):
    """Materialize a relation from literal rows (for query-side constants)."""

    def __init__(self, rows_data: Sequence[tuple], layout: RowLayout):
        self._rows = list(rows_data)
        self.layout = layout

    def rows(self) -> Iterator[tuple]:
        yield from self._rows

    def describe(self) -> str:
        return f"Materialize ({len(self._rows)} rows)"
