"""EXPLAIN / EXPLAIN ANALYZE support: plan rendering and instrumentation.

``EXPLAIN`` renders the physical operator tree the planner built —
making visible what the paper could only infer from the commercial
optimizer's opaque output ("no optimization was done on the UDF call").
``EXPLAIN ANALYZE`` additionally runs the plan with every operator
wrapped by :func:`instrument`, recording per-operator output rows, loop
counts and (inclusive) wall-clock time, PostgreSQL-style.

The interesting line for this paper is the accelerator access path::

    Filter: lexequal(books.author, 'Nehru', 0.25, '')  (rows=3 ...)
      RowidScan on books via qgram accelerator (candidates=17) (rows=17 ...)

``candidates`` is the q-gram/phonetic-index candidate count *after* the
length/count/position filters (Table 2's "candidate set"), and the
RowidScan's actual row count equals the UDF recheck invocations made by
the Filter above it — the two numbers Section 5 uses to explain why the
accelerated plans win.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro import obs
from repro.minidb.executor import PhysicalOp


@dataclass
class OpStats:
    """Per-operator runtime accounting collected by :func:`instrument`."""

    loops: int = 0
    rows: int = 0
    seconds: float = 0.0


@dataclass
class InstrumentedNode:
    """One node of an instrumented plan tree."""

    op: PhysicalOp
    stats: OpStats
    children: list["InstrumentedNode"] = field(default_factory=list)


def instrument(plan: PhysicalOp) -> InstrumentedNode:
    """Wrap every operator's ``rows`` with row/loop/time accounting.

    Returns the stats tree; the plan itself is mutated in place (each
    node's ``rows`` is replaced by a counting wrapper), so running
    ``plan.rows()`` afterwards populates the stats.  Times are
    *inclusive* — an operator's clock runs while its children produce
    rows for it, as in PostgreSQL's EXPLAIN ANALYZE.
    """
    stats = OpStats()
    original_rows = plan.rows

    def counting_rows():
        stats.loops += 1
        iterator = original_rows()
        perf_counter = time.perf_counter
        while True:
            started = perf_counter()
            try:
                row = next(iterator)
            except StopIteration:
                stats.seconds += perf_counter() - started
                return
            stats.seconds += perf_counter() - started
            stats.rows += 1
            yield row

    plan.rows = counting_rows  # type: ignore[method-assign]
    node = InstrumentedNode(op=plan, stats=stats)
    for child in plan.children():
        node.children.append(instrument(child))
    return node


def _estimate_suffix(op: PhysicalOp) -> str:
    """`` (est_rows=N est_cost=C)`` when the planner annotated ``op``."""
    if op.est_rows is None:
        return ""
    text = f"  (est_rows={op.est_rows:.0f}"
    if op.est_cost is not None:
        text += f" est_cost={op.est_cost:.0f}"
    return text + ")"


def render_plan(plan: PhysicalOp) -> list[str]:
    """Indented EXPLAIN lines for a plan tree (no execution)."""
    lines: list[str] = []

    def visit(op: PhysicalOp, depth: int) -> None:
        indent = "  " * depth
        prefix = "" if depth == 0 else "->  "
        lines.append(f"{indent}{prefix}{op.describe()}{_estimate_suffix(op)}")
        for child in op.children():
            visit(child, depth + 1)

    visit(plan, 0)
    return lines


def render_analyzed(node: InstrumentedNode) -> list[str]:
    """Indented EXPLAIN ANALYZE lines from an instrumented run.

    Estimated and actual counts render side by side — the estimated-vs-
    actual gap is the planner's report card, exactly what the paper
    could not get out of the commercial optimizer.
    """
    lines: list[str] = []

    def visit(inode: InstrumentedNode, depth: int) -> None:
        indent = "  " * depth
        prefix = "" if depth == 0 else "->  "
        stats = inode.stats
        millis = stats.seconds * 1000.0
        lines.append(
            f"{indent}{prefix}{inode.op.describe()}"
            f"{_estimate_suffix(inode.op)}  "
            f"(actual rows={stats.rows} loops={stats.loops} "
            f"time={millis:.3f}ms)"
        )
        for child in inode.children:
            visit(child, depth + 1)

    visit(node, 0)
    return lines


def explain(plan: PhysicalOp, *, analyze: bool = False) -> list[str]:
    """EXPLAIN output lines; with ``analyze`` the plan is executed.

    ANALYZE consumes the plan to exhaustion (results are discarded, as
    in PostgreSQL) and appends planning-free execution-time and
    row-count summary lines.  Publishes ``minidb.explain_analyze`` /
    ``minidb.explain`` counters on the global metrics registry.
    """
    if not analyze:
        obs.incr("minidb.explain")
        return render_plan(plan)
    obs.incr("minidb.explain_analyze")
    root = instrument(plan)
    started = time.perf_counter()
    result_rows = 0
    for _row in plan.rows():
        result_rows += 1
    elapsed = time.perf_counter() - started
    lines = render_analyzed(root)
    lines.append(f"Execution time: {elapsed * 1000.0:.3f} ms")
    lines.append(f"Result rows: {result_rows}")
    return lines
