"""A B+ tree index with duplicate keys, point and range scans.

The paper's phonetic index is "a standard database B-Tree index ... on the
grouped phoneme string identifier attribute" (Section 5.3); this module is
that standard index.  Keys are any mutually comparable Python values (the
phonetic index stores integers); each key maps to the list of rowids
carrying it.

The implementation is a textbook B+ tree: sorted keys in every node,
leaves chained for range scans, splits on overflow, and borrow/merge
rebalancing on underflow, so deletes do not degrade the tree.  ``bisect``
does the in-node searching.
"""

from __future__ import annotations

import bisect
from collections.abc import Iterator

from repro.errors import DatabaseError


class _Leaf:
    __slots__ = ("keys", "buckets", "next")

    def __init__(self) -> None:
        self.keys: list = []
        self.buckets: list[list] = []
        self.next: _Leaf | None = None


class _Internal:
    __slots__ = ("keys", "children")

    def __init__(self) -> None:
        # children[i] holds keys < keys[i]; children[-1] holds the rest.
        self.keys: list = []
        self.children: list = []


class BPlusTree:
    """B+ tree mapping keys to lists of values (duplicates allowed)."""

    def __init__(self, order: int = 64):
        if order < 4:
            raise DatabaseError(f"B+ tree order must be >= 4, got {order}")
        self.order = order
        self._max_keys = order - 1
        self._min_keys = (order - 1) // 2
        self._root: _Leaf | _Internal = _Leaf()
        self._size = 0  # number of (key, value) entries

    def __len__(self) -> int:
        return self._size

    @property
    def key_count(self) -> int:
        """Number of distinct keys."""
        return sum(1 for _ in self.items())

    @classmethod
    def bulk_load(cls, items, order: int = 64) -> "BPlusTree":
        """Build a tree from sorted ``(key, bucket)`` pairs in one pass.

        Linear time (no per-entry descent): leaves are packed
        left-to-right at full fanout, internal levels built bottom-up.
        This is the snapshot-restore path — a checkpointed 200k-row
        index re-attaches without paying 200k ``insert`` descents.
        Keys must be strictly increasing and buckets non-empty, else
        :class:`~repro.errors.DatabaseError`.
        """
        tree = cls(order=order)
        # Single validating pass: buckets are copied (the tree mutates
        # them in place) and key order checked as we go — this runs
        # over millions of posting entries on the snapshot-restore
        # path, so no per-leaf re-scans.
        all_keys: list = []
        all_buckets: list[list] = []
        size = 0
        have_prev = False
        prev = None
        for key, bucket in items:
            bucket = list(bucket)
            if not bucket:
                raise DatabaseError("bulk_load buckets must be non-empty")
            if have_prev and not prev < key:
                raise DatabaseError(
                    "bulk_load requires strictly increasing keys"
                )
            prev = key
            have_prev = True
            all_keys.append(key)
            all_buckets.append(bucket)
            size += len(bucket)
        if not all_keys:
            return tree
        cap = tree._max_keys
        floor = tree._min_keys
        leaves: list[_Leaf] = []
        i, n = 0, len(all_keys)
        while i < n:
            take = min(cap, n - i)
            # Never leave an underfull tail: shrink this node instead.
            if 0 < n - i - take < floor:
                take = n - i - floor
            leaf = _Leaf()
            leaf.keys = all_keys[i : i + take]
            leaf.buckets = all_buckets[i : i + take]
            if leaves:
                leaves[-1].next = leaf
            leaves.append(leaf)
            i += take
        tree._size = size
        level: list = leaves
        lows = [leaf.keys[0] for leaf in leaves]
        max_children = order
        min_children = floor + 1
        while len(level) > 1:
            parents: list = []
            parent_lows: list = []
            i, n = 0, len(level)
            while i < n:
                take = min(max_children, n - i)
                if 0 < n - i - take < min_children:
                    take = n - i - min_children
                node = _Internal()
                node.children = level[i : i + take]
                node.keys = lows[i + 1 : i + take]
                parents.append(node)
                parent_lows.append(lows[i])
                i += take
            level = parents
            lows = parent_lows
        tree._root = level[0]
        return tree

    # ------------------------------------------------------------- search

    def search(self, key) -> list:
        """All values stored under ``key`` (empty list if absent).

        Deliberately uninstrumented: callers probe in tight loops, so
        the phonetic pipeline accounts for ``btree.probes`` itself
        (batched — see ``repro.core.engine`` and ``core.strategies``).
        """
        leaf = self._find_leaf(key)
        idx = bisect.bisect_left(leaf.keys, key)
        if idx < len(leaf.keys) and leaf.keys[idx] == key:
            return list(leaf.buckets[idx])
        return []

    def contains(self, key) -> bool:
        """True if at least one entry exists under ``key``."""
        leaf = self._find_leaf(key)
        idx = bisect.bisect_left(leaf.keys, key)
        return idx < len(leaf.keys) and leaf.keys[idx] == key

    def range_scan(
        self,
        low=None,
        high=None,
        *,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> Iterator[tuple[object, object]]:
        """Yield ``(key, value)`` pairs with ``low <= key <= high`` in order.

        ``None`` bounds are open ends.  Inclusivity of each bound is
        controlled independently.
        """
        if low is None:
            leaf: _Leaf | None = self._leftmost_leaf()
            idx = 0
        else:
            leaf = self._find_leaf(low)
            if low_inclusive:
                idx = bisect.bisect_left(leaf.keys, low)
            else:
                idx = bisect.bisect_right(leaf.keys, low)
        while leaf is not None:
            while idx < len(leaf.keys):
                key = leaf.keys[idx]
                if high is not None:
                    if high_inclusive:
                        if key > high:
                            return
                    elif key >= high:
                        return
                for value in leaf.buckets[idx]:
                    yield key, value
                idx += 1
            leaf = leaf.next
            idx = 0

    def items(self) -> Iterator[tuple[object, list]]:
        """Yield ``(key, bucket)`` for every distinct key, in key order."""
        leaf: _Leaf | None = self._leftmost_leaf()
        while leaf is not None:
            for key, bucket in zip(leaf.keys, leaf.buckets):
                yield key, list(bucket)
            leaf = leaf.next

    def keys(self) -> Iterator:
        for key, _bucket in self.items():
            yield key

    def _find_leaf(self, key) -> _Leaf:
        node = self._root
        while isinstance(node, _Internal):
            idx = bisect.bisect_right(node.keys, key)
            node = node.children[idx]
        return node

    def _leftmost_leaf(self) -> _Leaf:
        node = self._root
        while isinstance(node, _Internal):
            node = node.children[0]
        return node

    # ------------------------------------------------------------- insert

    def insert(self, key, value) -> None:
        """Add ``value`` under ``key`` (duplicates accumulate)."""
        split = self._insert(self._root, key, value)
        if split is not None:
            sep_key, right = split
            new_root = _Internal()
            new_root.keys = [sep_key]
            new_root.children = [self._root, right]
            self._root = new_root
        self._size += 1

    def _insert(self, node, key, value):
        if isinstance(node, _Leaf):
            idx = bisect.bisect_left(node.keys, key)
            if idx < len(node.keys) and node.keys[idx] == key:
                node.buckets[idx].append(value)
                return None
            node.keys.insert(idx, key)
            node.buckets.insert(idx, [value])
            if len(node.keys) > self._max_keys:
                return self._split_leaf(node)
            return None
        idx = bisect.bisect_right(node.keys, key)
        split = self._insert(node.children[idx], key, value)
        if split is None:
            return None
        sep_key, right = split
        node.keys.insert(idx, sep_key)
        node.children.insert(idx + 1, right)
        if len(node.keys) > self._max_keys:
            return self._split_internal(node)
        return None

    def _split_leaf(self, leaf: _Leaf):
        mid = len(leaf.keys) // 2
        right = _Leaf()
        right.keys = leaf.keys[mid:]
        right.buckets = leaf.buckets[mid:]
        leaf.keys = leaf.keys[:mid]
        leaf.buckets = leaf.buckets[:mid]
        right.next = leaf.next
        leaf.next = right
        return right.keys[0], right

    def _split_internal(self, node: _Internal):
        mid = len(node.keys) // 2
        sep_key = node.keys[mid]
        right = _Internal()
        right.keys = node.keys[mid + 1 :]
        right.children = node.children[mid + 1 :]
        node.keys = node.keys[:mid]
        node.children = node.children[: mid + 1]
        return sep_key, right

    # ------------------------------------------------------------- delete

    def delete(self, key, value) -> bool:
        """Remove one occurrence of ``value`` under ``key``.

        Returns True if an entry was removed, False if absent.
        """
        removed = self._delete(self._root, key, value)
        if removed:
            self._size -= 1
            if isinstance(self._root, _Internal) and len(self._root.keys) == 0:
                self._root = self._root.children[0]
        return removed

    def _delete(self, node, key, value) -> bool:
        if isinstance(node, _Leaf):
            idx = bisect.bisect_left(node.keys, key)
            if idx >= len(node.keys) or node.keys[idx] != key:
                return False
            bucket = node.buckets[idx]
            try:
                bucket.remove(value)
            except ValueError:
                return False
            if not bucket:
                node.keys.pop(idx)
                node.buckets.pop(idx)
            return True
        idx = bisect.bisect_right(node.keys, key)
        child = node.children[idx]
        removed = self._delete(child, key, value)
        if removed:
            self._rebalance(node, idx)
        return removed

    def _rebalance(self, parent: _Internal, idx: int) -> None:
        child = parent.children[idx]
        if self._entry_count(child) >= self._min_keys:
            return
        left = parent.children[idx - 1] if idx > 0 else None
        right = parent.children[idx + 1] if idx + 1 < len(parent.children) else None
        # Borrow from a sibling with spare entries, else merge.
        if left is not None and self._entry_count(left) > self._min_keys:
            self._borrow_from_left(parent, idx)
        elif right is not None and self._entry_count(right) > self._min_keys:
            self._borrow_from_right(parent, idx)
        elif left is not None:
            self._merge(parent, idx - 1)
        elif right is not None:
            self._merge(parent, idx)

    @staticmethod
    def _entry_count(node) -> int:
        return len(node.keys)

    def _borrow_from_left(self, parent: _Internal, idx: int) -> None:
        left = parent.children[idx - 1]
        child = parent.children[idx]
        if isinstance(child, _Leaf):
            child.keys.insert(0, left.keys.pop())
            child.buckets.insert(0, left.buckets.pop())
            parent.keys[idx - 1] = child.keys[0]
        else:
            child.keys.insert(0, parent.keys[idx - 1])
            parent.keys[idx - 1] = left.keys.pop()
            child.children.insert(0, left.children.pop())

    def _borrow_from_right(self, parent: _Internal, idx: int) -> None:
        right = parent.children[idx + 1]
        child = parent.children[idx]
        if isinstance(child, _Leaf):
            child.keys.append(right.keys.pop(0))
            child.buckets.append(right.buckets.pop(0))
            parent.keys[idx] = right.keys[0]
        else:
            child.keys.append(parent.keys[idx])
            parent.keys[idx] = right.keys.pop(0)
            child.children.append(right.children.pop(0))

    def _merge(self, parent: _Internal, left_idx: int) -> None:
        left = parent.children[left_idx]
        right = parent.children[left_idx + 1]
        if isinstance(left, _Leaf):
            left.keys.extend(right.keys)
            left.buckets.extend(right.buckets)
            left.next = right.next
        else:
            left.keys.append(parent.keys[left_idx])
            left.keys.extend(right.keys)
            left.children.extend(right.children)
        parent.keys.pop(left_idx)
        parent.children.pop(left_idx + 1)

    # ------------------------------------------------------------ checks

    def check_invariants(self) -> None:
        """Verify structural invariants (used by the test suite).

        Checks: sorted keys in every node, fanout bounds on non-root
        nodes, uniform leaf depth, leaf chain consistency, and separator
        correctness.  Raises :class:`~repro.errors.DatabaseError` on any
        violation.
        """
        leaves: list[_Leaf] = []

        def walk(node, depth: int, low, high) -> int:
            keys = node.keys
            for a, b in zip(keys, keys[1:]):
                if not a < b:
                    raise DatabaseError(f"unsorted node keys {keys!r}")
            if keys:
                if low is not None and keys[0] < low:
                    raise DatabaseError("separator violation (low)")
                if high is not None and keys[-1] >= high:
                    raise DatabaseError("separator violation (high)")
            if isinstance(node, _Leaf):
                if node is not self._root and len(keys) < self._min_keys:
                    raise DatabaseError("leaf underflow")
                if len(keys) > self._max_keys:
                    raise DatabaseError("leaf overflow")
                for bucket in node.buckets:
                    if not bucket:
                        raise DatabaseError("empty bucket")
                leaves.append(node)
                return depth
            if node is not self._root and len(keys) < self._min_keys:
                raise DatabaseError("internal underflow")
            if len(keys) > self._max_keys:
                raise DatabaseError("internal overflow")
            if len(node.children) != len(keys) + 1:
                raise DatabaseError("child count mismatch")
            depths = set()
            bounds = [low, *keys, high]
            for i, child in enumerate(node.children):
                depths.add(walk(child, depth + 1, bounds[i], bounds[i + 1]))
            if len(depths) != 1:
                raise DatabaseError("leaves at different depths")
            return depths.pop()

        walk(self._root, 0, None, None)
        # Leaf chain must visit exactly the leaves found by the walk.
        chained = []
        leaf: _Leaf | None = self._leftmost_leaf()
        while leaf is not None:
            chained.append(leaf)
            leaf = leaf.next
        if [id(x) for x in chained] != [id(x) for x in leaves]:
            raise DatabaseError("leaf chain does not match tree order")
        total = sum(len(b) for x in leaves for b in x.buckets)
        if total != self._size:
            raise DatabaseError(
                f"size mismatch: counted {total}, recorded {self._size}"
            )
