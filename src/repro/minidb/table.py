"""Heap tables: schema-validated in-memory row storage.

Rows are Python tuples addressed by a stable integer rowid (their slot in
the heap).  Deletion tombstones the slot instead of compacting, so rowids
stored in indexes stay valid — the same contract a slotted-page heap file
gives a real engine.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.errors import ExecutionError
from repro.locks import make_lock
from repro.minidb.schema import TableSchema

#: Sentinel stored in deleted slots.
_TOMBSTONE = object()


class HeapTable:
    """An append-only heap of validated row tuples with tombstone deletes.

    Writes (insert/delete) serialize on a per-table lock so concurrent
    sessions get distinct rowids and a consistent live count.  Reads are
    lock-free: slots are only appended or replaced whole (never resized
    in place), so a concurrent :meth:`scan` sees each slot either before
    or after a write — the same torn-read-free guarantee a page latch
    gives, without a latch on the read path.
    """

    def __init__(self, schema: TableSchema):
        self.schema = schema
        self._rows: list[tuple | object] = []
        self._live_count = 0
        self._write_lock = make_lock("minidb.table.write")

    @property
    def name(self) -> str:
        return self.schema.name

    def __len__(self) -> int:
        return self._live_count

    def insert(self, row: tuple) -> int:
        """Insert a row; returns its rowid."""
        validated = self.schema.validate_row(row)
        with self._write_lock:
            self._rows.append(validated)
            self._live_count += 1
            return len(self._rows) - 1

    def insert_many(self, rows: Iterable[tuple]) -> list[int]:
        """Bulk insert; returns the assigned rowids."""
        return [self.insert(row) for row in rows]

    def fetch(self, rowid: int) -> tuple:
        """Fetch a live row by rowid."""
        try:
            row = self._rows[rowid]
        except IndexError:
            raise ExecutionError(
                f"table {self.name!r}: rowid {rowid} out of range"
            ) from None
        if row is _TOMBSTONE:
            raise ExecutionError(
                f"table {self.name!r}: rowid {rowid} is deleted"
            )
        return row  # type: ignore[return-value]

    def delete(self, rowid: int) -> tuple:
        """Delete a row by rowid; returns the old row."""
        with self._write_lock:
            row = self.fetch(rowid)
            self._rows[rowid] = _TOMBSTONE
            self._live_count -= 1
            return row

    def slot_snapshot(self) -> list[tuple | None]:
        """Raw slot list for checkpointing; tombstones become ``None``.

        The *shape* of the slot list is part of durable state: rowids
        are slot positions, so a reopened table must keep every
        tombstone hole exactly where it was or index entries would
        point at the wrong rows.
        """
        return [
            None if row is _TOMBSTONE else row for row in self._rows
        ]

    @classmethod
    def from_slots(
        cls, schema: TableSchema, slots: Iterable[tuple | None]
    ) -> "HeapTable":
        """Rebuild a table from :meth:`slot_snapshot` output.

        Storage-recovery path: rows were validated when first inserted
        (and the checkpoint is checksummed), so they are not
        re-validated here.
        """
        table = cls(schema)
        for slot in slots:
            if slot is None:
                table._rows.append(_TOMBSTONE)
            else:
                table._rows.append(tuple(slot))
                table._live_count += 1
        return table

    def scan(self) -> Iterator[tuple[int, tuple]]:
        """Yield ``(rowid, row)`` for every live row, in heap order."""
        for rowid, row in enumerate(self._rows):
            if row is not _TOMBSTONE:
                yield rowid, row  # type: ignore[misc]

    def rows(self) -> Iterator[tuple]:
        """Yield live rows without rowids."""
        for _rowid, row in self.scan():
            yield row
