"""The statistics catalog: what ``ANALYZE`` collects, what the planner reads.

The paper's evaluation (Figs. 9–13) shows the best LexEQUAL execution
strategy flips with lexicon size, threshold and selectivity — so the
planner needs numbers, not a flag.  ``ANALYZE [table]`` walks each heap
once for table/column statistics and asks every registered phonetic
accelerator for its structure statistics plus *sampled* selectivities
(candidate fraction of the q-gram filter, bucket fraction of the
grouped-key index) measured by probing the accelerator with a seeded
sample of its own stored phoneme strings.

Everything here is JSON-serializable, so the stats catalog persists
through the storage backend (``stats.json``) and survives restarts.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

from repro import obs


@dataclass
class ColumnStats:
    """Per-column statistics from one ANALYZE pass."""

    n_distinct: int = 0
    null_frac: float = 0.0
    avg_len: float = 0.0


@dataclass
class AcceleratorStats:
    """Phonetic-accelerator statistics for one ``table.column``.

    ``qgram_sel`` / ``index_sel`` / ``ann_sel`` are measured
    candidate-set fractions (candidates ÷ indexed rows), averaged over
    ``sample_size`` probe queries drawn from the stored strings; None
    when the corresponding structure is not maintained.
    """

    rows: int = 0
    avg_plen: float = 0.0
    distinct_keys: int = 0
    max_bucket: int = 0
    distinct_grams: int = 0
    qgram_postings: int = 0
    qgram_sel: float | None = None
    index_sel: float | None = None
    ann_sel: float | None = None
    sample_size: int = 0
    threshold: float = 0.0


@dataclass
class TableStats:
    """One table's statistics."""

    name: str
    row_count: int = 0
    columns: dict[str, ColumnStats] = field(default_factory=dict)
    accelerated: dict[str, AcceleratorStats] = field(default_factory=dict)


class StatsCatalog:
    """All per-table statistics, keyed by lowercase table name."""

    def __init__(self) -> None:
        self._tables: dict[str, TableStats] = {}

    def __len__(self) -> int:
        return len(self._tables)

    def put(self, stats: TableStats) -> None:
        self._tables[stats.name.lower()] = stats

    def drop(self, table_name: str) -> None:
        self._tables.pop(table_name.lower(), None)

    def prune(self, keep) -> int:
        """Drop stats for tables not in ``keep``; returns the count.

        Recovery uses this: ``stats.json`` may predate a ``DROP TABLE``
        that only the WAL recorded, and stale stats for a vanished (or
        later recreated) table would skew the cost-based planner.
        """
        keep_keys = {name.lower() for name in keep}
        stale = [key for key in self._tables if key not in keep_keys]
        for key in stale:
            del self._tables[key]
        return len(stale)

    def table(self, table_name: str) -> TableStats | None:
        return self._tables.get(table_name.lower())

    def column(
        self, table_name: str, column_name: str
    ) -> ColumnStats | None:
        stats = self.table(table_name)
        if stats is None:
            return None
        return stats.columns.get(column_name.lower())

    def accelerator(
        self, table_name: str, column_name: str
    ) -> AcceleratorStats | None:
        stats = self.table(table_name)
        if stats is None:
            return None
        return stats.accelerated.get(column_name.lower())

    # -------------------------------------------------- serialization

    def to_dict(self) -> dict:
        return {
            "tables": {
                key: asdict(stats) for key, stats in self._tables.items()
            }
        }

    @classmethod
    def from_dict(cls, payload: dict | None) -> "StatsCatalog":
        catalog = cls()
        for key, raw in (payload or {}).get("tables", {}).items():
            stats = TableStats(
                name=raw.get("name", key),
                row_count=int(raw.get("row_count", 0)),
                columns={
                    col: ColumnStats(**cstats)
                    for col, cstats in raw.get("columns", {}).items()
                },
                accelerated={
                    col: AcceleratorStats(**astats)
                    for col, astats in raw.get("accelerated", {}).items()
                },
            )
            catalog._tables[key] = stats
        return catalog


def analyze_table(db, table_name: str, *, sample: int = 32) -> TableStats:
    """One ANALYZE pass over one table (heap scan + accelerator probes)."""
    table = db.table(table_name)
    schema = table.schema
    positions = range(len(schema.columns))
    distinct: list[set] = [set() for _ in positions]
    nulls = [0 for _ in positions]
    lengths = [0 for _ in positions]
    row_count = 0
    for _rowid, row in table.scan():
        row_count += 1
        for pos in positions:
            value = row[pos]
            if value is None:
                nulls[pos] += 1
                continue
            distinct[pos].add(value)
            lengths[pos] += len(str(value))
    stats = TableStats(name=table.name, row_count=row_count)
    for pos, column in enumerate(schema.columns):
        non_null = row_count - nulls[pos]
        stats.columns[column.name.lower()] = ColumnStats(
            n_distinct=len(distinct[pos]),
            null_frac=(nulls[pos] / row_count) if row_count else 0.0,
            avg_len=(lengths[pos] / non_null) if non_null else 0.0,
        )
        accelerator = db.accelerator_for(table.name, column.name)
        collect = getattr(accelerator, "collect_stats", None)
        if collect is not None:
            stats.accelerated[column.name.lower()] = collect(sample=sample)
    return stats


def analyze_database(
    db, table_name: str | None = None, *, sample: int = 32
) -> int:
    """Refresh ``db.stats`` for one table (or all); returns the count."""
    names = [table_name] if table_name else list(db.table_names())
    with obs.timed("minidb.analyze"):
        for name in names:
            db.stats.put(analyze_table(db, name, sample=sample))
    obs.incr("minidb.analyze.tables", len(names))
    return len(names)
