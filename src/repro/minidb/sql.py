"""SQL dialect parser for the minidb engine.

Supports the statement shapes the paper's queries use, plus enough DDL/DML
to build the examples:

* ``SELECT [DISTINCT] ... FROM t [alias], ... [WHERE ...] [GROUP BY ...]
  [HAVING ...] [ORDER BY ...] [LIMIT n]``
* the multiscript extension of paper Figure 3/5::

      expr LEXEQUAL expr [THRESHOLD <number>]
           [INLANGUAGES { english, hindi, tamil }]   -- or INLANGUAGES *

* ``CREATE TABLE t (col TYPE [NOT NULL], ...)`` with types INTEGER,
  REAL, TEXT, BOOLEAN;
* ``CREATE INDEX i ON t (col)``, ``DROP TABLE t``, ``DROP INDEX i``;
* ``INSERT INTO t VALUES (...), (...)`` with literals and ``:params``;
* ``EXPLAIN [ANALYZE] SELECT ...`` — the plan tree (ANALYZE also runs
  the query and reports per-operator rows/loops/time).

The grammar is classic recursive descent over a hand-rolled tokenizer;
precedence: OR < AND < NOT < comparison/predicates < additive <
multiplicative < unary < primary.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.errors import SQLSyntaxError
from repro.minidb.expr import (
    Aggregate,
    Between,
    BinaryOp,
    BoolOp,
    ColumnRef,
    Expr,
    FuncCall,
    InList,
    IsNull,
    LexEqual,
    Literal,
    Param,
    UnaryOp,
)
from repro.minidb.values import SqlType

_KEYWORDS = {
    "select", "distinct", "from", "where", "group", "by", "having",
    "order", "limit", "as", "and", "or", "not", "between", "in", "is",
    "null", "like", "asc", "desc", "create", "table", "index", "on",
    "drop", "insert", "into", "values", "integer", "real", "text",
    "boolean", "true", "false", "lexequal", "threshold", "inlanguages",
    "count", "sum", "min", "max", "avg", "explain", "analyze",
}

_AGGREGATES = {"count", "sum", "min", "max", "avg"}

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>\d+(\.\d+)?([eE][+-]?\d+)?)
  | (?P<string>'(?:[^']|'')*')
  | (?P<param>:[A-Za-z_][A-Za-z_0-9]*)
  | (?P<name>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<op><>|<=|>=|\|\||[=<>(),.*{}+\-/;])
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class Token:
    kind: str  # 'number' | 'string' | 'param' | 'name' | 'keyword' | 'op' | 'eof'
    text: str
    pos: int


def tokenize(sql: str) -> list[Token]:
    tokens: list[Token] = []
    pos = 0
    n = len(sql)
    while pos < n:
        match = _TOKEN_RE.match(sql, pos)
        if match is None:
            raise SQLSyntaxError(
                f"unexpected character {sql[pos]!r}", position=pos
            )
        kind = match.lastgroup
        text = match.group()
        if kind != "ws":
            if kind == "name" and text.lower() in _KEYWORDS:
                tokens.append(Token("keyword", text.lower(), pos))
            else:
                tokens.append(Token(kind, text, pos))  # type: ignore[arg-type]
        pos = match.end()
    tokens.append(Token("eof", "", n))
    return tokens


# ------------------------------------------------------------------ AST

@dataclass
class SelectItem:
    expr: Expr | None  # None means '*'
    alias: str | None = None
    star_table: str | None = None  # for 'alias.*'


@dataclass
class TableRef:
    name: str
    alias: str


@dataclass
class SelectStmt:
    items: list[SelectItem]
    tables: list[TableRef]
    where: Expr | None = None
    group_by: list[Expr] = field(default_factory=list)
    having: Expr | None = None
    order_by: list[tuple[Expr, bool]] = field(default_factory=list)
    limit: int | None = None
    distinct: bool = False


@dataclass
class CreateTableStmt:
    name: str
    columns: list[tuple[str, SqlType, bool]]  # (name, type, nullable)


@dataclass
class CreateIndexStmt:
    name: str
    table: str
    column: str


@dataclass
class DropTableStmt:
    name: str


@dataclass
class DropIndexStmt:
    name: str


@dataclass
class InsertStmt:
    table: str
    rows: list[list[Expr]]


@dataclass
class ExplainStmt:
    """``EXPLAIN [ANALYZE] <select>`` — show (and optionally run) a plan."""

    query: SelectStmt
    analyze: bool = False


@dataclass
class AnalyzeStmt:
    """``ANALYZE [table]`` — refresh the planner's statistics catalog."""

    table: str | None = None


Statement = (
    SelectStmt
    | CreateTableStmt
    | CreateIndexStmt
    | DropTableStmt
    | DropIndexStmt
    | InsertStmt
    | ExplainStmt
    | AnalyzeStmt
)


class Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, sql: str):
        self._sql = sql
        self._tokens = tokenize(sql)
        self._pos = 0

    # --------------------------------------------------------- utilities

    def _peek(self, offset: int = 0) -> Token:
        return self._tokens[min(self._pos + offset, len(self._tokens) - 1)]

    def _next(self) -> Token:
        tok = self._tokens[self._pos]
        if tok.kind != "eof":
            self._pos += 1
        return tok

    def _at_keyword(self, *words: str) -> bool:
        tok = self._peek()
        return tok.kind == "keyword" and tok.text in words

    def _accept_keyword(self, *words: str) -> bool:
        if self._at_keyword(*words):
            self._next()
            return True
        return False

    def _expect_keyword(self, word: str) -> None:
        tok = self._next()
        if tok.kind != "keyword" or tok.text != word:
            raise SQLSyntaxError(
                f"expected {word.upper()}, got {tok.text!r}", tok.pos
            )

    def _accept_op(self, op: str) -> bool:
        tok = self._peek()
        if tok.kind == "op" and tok.text == op:
            self._next()
            return True
        return False

    def _expect_op(self, op: str) -> None:
        tok = self._next()
        if tok.kind != "op" or tok.text != op:
            raise SQLSyntaxError(f"expected {op!r}, got {tok.text!r}", tok.pos)

    def _expect_name(self) -> str:
        tok = self._next()
        if tok.kind == "name":
            return tok.text
        # Allow non-reserved keywords as identifiers where unambiguous.
        if tok.kind == "keyword" and tok.text in ("text", "index", "count"):
            return tok.text
        raise SQLSyntaxError(f"expected identifier, got {tok.text!r}", tok.pos)

    # --------------------------------------------------------- statements

    def parse_statement(self) -> Statement:
        if self._at_keyword("explain"):
            stmt: Statement = self._parse_explain()
        elif self._at_keyword("select"):
            stmt = self._parse_select()
        elif self._at_keyword("create"):
            stmt = self._parse_create()
        elif self._at_keyword("drop"):
            stmt = self._parse_drop()
        elif self._at_keyword("insert"):
            stmt = self._parse_insert()
        elif self._at_keyword("analyze"):
            stmt = self._parse_analyze()
        else:
            tok = self._peek()
            raise SQLSyntaxError(
                f"expected a statement, got {tok.text!r}", tok.pos
            )
        self._accept_op(";")
        tok = self._peek()
        if tok.kind != "eof":
            raise SQLSyntaxError(
                f"unexpected trailing input {tok.text!r}", tok.pos
            )
        return stmt

    def _parse_explain(self) -> ExplainStmt:
        self._expect_keyword("explain")
        analyze = self._accept_keyword("analyze")
        if not self._at_keyword("select"):
            tok = self._peek()
            raise SQLSyntaxError(
                f"EXPLAIN supports only SELECT, got {tok.text!r}", tok.pos
            )
        return ExplainStmt(query=self._parse_select(), analyze=analyze)

    def _parse_analyze(self) -> AnalyzeStmt:
        self._expect_keyword("analyze")
        tok = self._peek()
        if tok.kind == "eof" or (tok.kind == "op" and tok.text == ";"):
            return AnalyzeStmt()
        return AnalyzeStmt(table=self._expect_name())

    def _parse_select(self) -> SelectStmt:
        self._expect_keyword("select")
        distinct = self._accept_keyword("distinct")
        items = [self._parse_select_item()]
        while self._accept_op(","):
            items.append(self._parse_select_item())
        self._expect_keyword("from")
        tables = [self._parse_table_ref()]
        while self._accept_op(","):
            tables.append(self._parse_table_ref())
        where = None
        if self._accept_keyword("where"):
            where = self.parse_expr()
        group_by: list[Expr] = []
        having = None
        if self._accept_keyword("group"):
            self._expect_keyword("by")
            group_by.append(self.parse_expr())
            while self._accept_op(","):
                group_by.append(self.parse_expr())
        if self._accept_keyword("having"):
            having = self.parse_expr()
        order_by: list[tuple[Expr, bool]] = []
        if self._accept_keyword("order"):
            self._expect_keyword("by")
            order_by.append(self._parse_order_item())
            while self._accept_op(","):
                order_by.append(self._parse_order_item())
        limit = None
        if self._accept_keyword("limit"):
            tok = self._next()
            if tok.kind != "number" or "." in tok.text:
                raise SQLSyntaxError("LIMIT expects an integer", tok.pos)
            limit = int(tok.text)
        return SelectStmt(
            items=items,
            tables=tables,
            where=where,
            group_by=group_by,
            having=having,
            order_by=order_by,
            limit=limit,
            distinct=distinct,
        )

    def _parse_select_item(self) -> SelectItem:
        if self._accept_op("*"):
            return SelectItem(expr=None)
        # 'alias.*'
        if (
            self._peek().kind == "name"
            and self._peek(1).kind == "op"
            and self._peek(1).text == "."
            and self._peek(2).kind == "op"
            and self._peek(2).text == "*"
        ):
            table = self._expect_name()
            self._expect_op(".")
            self._expect_op("*")
            return SelectItem(expr=None, star_table=table)
        expr = self.parse_expr()
        alias = None
        if self._accept_keyword("as"):
            alias = self._expect_name()
        elif self._peek().kind == "name":
            alias = self._expect_name()
        return SelectItem(expr=expr, alias=alias)

    def _parse_order_item(self) -> tuple[Expr, bool]:
        expr = self.parse_expr()
        descending = False
        if self._accept_keyword("desc"):
            descending = True
        else:
            self._accept_keyword("asc")
        return expr, descending

    def _parse_table_ref(self) -> TableRef:
        name = self._expect_name()
        alias = name
        if self._accept_keyword("as"):
            alias = self._expect_name()
        elif self._peek().kind == "name":
            alias = self._expect_name()
        return TableRef(name=name, alias=alias)

    def _parse_create(self) -> Statement:
        self._expect_keyword("create")
        if self._accept_keyword("table"):
            name = self._expect_name()
            self._expect_op("(")
            columns: list[tuple[str, SqlType, bool]] = []
            while True:
                col_name = self._expect_name()
                col_type = self._parse_type()
                nullable = True
                if self._accept_keyword("not"):
                    self._expect_keyword("null")
                    nullable = False
                columns.append((col_name, col_type, nullable))
                if not self._accept_op(","):
                    break
            self._expect_op(")")
            return CreateTableStmt(name=name, columns=columns)
        if self._accept_keyword("index"):
            name = self._expect_name()
            self._expect_keyword("on")
            table = self._expect_name()
            self._expect_op("(")
            column = self._expect_name()
            self._expect_op(")")
            return CreateIndexStmt(name=name, table=table, column=column)
        tok = self._peek()
        raise SQLSyntaxError(
            f"expected TABLE or INDEX after CREATE, got {tok.text!r}", tok.pos
        )

    def _parse_type(self) -> SqlType:
        tok = self._next()
        mapping = {
            "integer": SqlType.INTEGER,
            "real": SqlType.REAL,
            "text": SqlType.TEXT,
            "boolean": SqlType.BOOLEAN,
        }
        if tok.kind == "keyword" and tok.text in mapping:
            return mapping[tok.text]
        raise SQLSyntaxError(f"unknown type {tok.text!r}", tok.pos)

    def _parse_drop(self) -> Statement:
        self._expect_keyword("drop")
        if self._accept_keyword("table"):
            return DropTableStmt(name=self._expect_name())
        if self._accept_keyword("index"):
            return DropIndexStmt(name=self._expect_name())
        tok = self._peek()
        raise SQLSyntaxError(
            f"expected TABLE or INDEX after DROP, got {tok.text!r}", tok.pos
        )

    def _parse_insert(self) -> InsertStmt:
        self._expect_keyword("insert")
        self._expect_keyword("into")
        table = self._expect_name()
        self._expect_keyword("values")
        rows: list[list[Expr]] = []
        while True:
            self._expect_op("(")
            row = [self.parse_expr()]
            while self._accept_op(","):
                row.append(self.parse_expr())
            self._expect_op(")")
            rows.append(row)
            if not self._accept_op(","):
                break
        return InsertStmt(table=table, rows=rows)

    # -------------------------------------------------------- expressions

    def parse_expr(self) -> Expr:
        return self._parse_or()

    def _parse_or(self) -> Expr:
        terms = [self._parse_and()]
        while self._accept_keyword("or"):
            terms.append(self._parse_and())
        if len(terms) == 1:
            return terms[0]
        return BoolOp("OR", tuple(terms))

    def _parse_and(self) -> Expr:
        terms = [self._parse_not()]
        while self._accept_keyword("and"):
            terms.append(self._parse_not())
        if len(terms) == 1:
            return terms[0]
        return BoolOp("AND", tuple(terms))

    def _parse_not(self) -> Expr:
        if self._accept_keyword("not"):
            return UnaryOp("NOT", self._parse_not())
        return self._parse_predicate()

    def _parse_predicate(self) -> Expr:
        left = self._parse_additive()
        tok = self._peek()
        if tok.kind == "op" and tok.text in ("=", "<>", "<", "<=", ">", ">="):
            self._next()
            right = self._parse_additive()
            return BinaryOp(tok.text, left, right)
        if self._accept_keyword("lexequal"):
            return self._parse_lexequal_tail(left)
        negated = False
        if self._at_keyword("not"):
            nxt = self._peek(1)
            if nxt.kind == "keyword" and nxt.text in ("between", "in"):
                self._next()
                negated = True
        if self._accept_keyword("between"):
            low = self._parse_additive()
            self._expect_keyword("and")
            high = self._parse_additive()
            return Between(left, low, high, negated=negated)
        if self._accept_keyword("in"):
            self._expect_op("(")
            items = [self.parse_expr()]
            while self._accept_op(","):
                items.append(self.parse_expr())
            self._expect_op(")")
            return InList(left, tuple(items), negated=negated)
        if self._accept_keyword("is"):
            negated = self._accept_keyword("not")
            self._expect_keyword("null")
            return IsNull(left, negated=negated)
        return left

    def _parse_lexequal_tail(self, left: Expr) -> Expr:
        right = self._parse_additive()
        threshold: Expr = Literal(0.0)
        if self._accept_keyword("threshold"):
            threshold = self._parse_additive()
        languages: tuple[str, ...] = ()
        if self._accept_keyword("inlanguages"):
            if self._accept_op("*"):
                languages = ()
            else:
                self._expect_op("{")
                langs = [self._expect_name().lower()]
                while self._accept_op(","):
                    if self._accept_op("*"):
                        continue
                    langs.append(self._expect_name().lower())
                self._expect_op("}")
                languages = tuple(langs)
        return LexEqual(left, right, threshold, languages)

    def _parse_additive(self) -> Expr:
        left = self._parse_multiplicative()
        while True:
            tok = self._peek()
            if tok.kind == "op" and tok.text in ("+", "-", "||"):
                self._next()
                right = self._parse_multiplicative()
                left = BinaryOp(tok.text, left, right)
            else:
                return left

    def _parse_multiplicative(self) -> Expr:
        left = self._parse_unary()
        while True:
            tok = self._peek()
            if tok.kind == "op" and tok.text in ("*", "/"):
                self._next()
                right = self._parse_unary()
                left = BinaryOp(tok.text, left, right)
            else:
                return left

    def _parse_unary(self) -> Expr:
        if self._accept_op("-"):
            return UnaryOp("-", self._parse_unary())
        self._accept_op("+")  # unary plus is a no-op
        return self._parse_primary()

    def _parse_primary(self) -> Expr:
        tok = self._peek()
        if tok.kind == "number":
            self._next()
            if "." in tok.text or "e" in tok.text.lower():
                return Literal(float(tok.text))
            return Literal(int(tok.text))
        if tok.kind == "string":
            self._next()
            return Literal(tok.text[1:-1].replace("''", "'"))
        if tok.kind == "param":
            self._next()
            return Param(tok.text[1:])
        if tok.kind == "keyword" and tok.text in ("true", "false"):
            self._next()
            return Literal(tok.text == "true")
        if tok.kind == "keyword" and tok.text == "null":
            self._next()
            return Literal(None)
        if tok.kind == "keyword" and tok.text in _AGGREGATES:
            self._next()
            func = tok.text.upper()
            self._expect_op("(")
            if func == "COUNT" and self._accept_op("*"):
                self._expect_op(")")
                return Aggregate("COUNT", None)
            arg = self.parse_expr()
            self._expect_op(")")
            return Aggregate(func, arg)
        if self._accept_op("("):
            expr = self.parse_expr()
            self._expect_op(")")
            return expr
        # ``lexequal(...)`` may also be called directly as a function
        # (the raw UDF form), even though LEXEQUAL is a keyword.
        if (
            tok.kind == "keyword"
            and tok.text == "lexequal"
            and self._peek(1).kind == "op"
            and self._peek(1).text == "("
        ):
            self._next()
            self._expect_op("(")
            args = [self.parse_expr()]
            while self._accept_op(","):
                args.append(self.parse_expr())
            self._expect_op(")")
            return FuncCall("lexequal", tuple(args))
        if tok.kind == "name":
            name = self._expect_name()
            if self._accept_op("("):
                args: list[Expr] = []
                if not self._accept_op(")"):
                    args.append(self.parse_expr())
                    while self._accept_op(","):
                        args.append(self.parse_expr())
                    self._expect_op(")")
                return FuncCall(name, tuple(args))
            if self._accept_op("."):
                column = self._expect_name()
                return ColumnRef(name, column)
            return ColumnRef(None, name)
        raise SQLSyntaxError(
            f"expected an expression, got {tok.text!r}", tok.pos
        )


def parse(sql: str) -> Statement:
    """Parse one SQL statement."""
    return Parser(sql).parse_statement()
