"""Expression AST and compiler for the minidb engine.

Expressions are small immutable AST nodes compiled into Python closures
against a *row layout* (the mapping from column references to positions in
the executor's flat row tuples).  Compilation happens once per operator,
so per-row evaluation is just closure calls — the difference matters in
the paper's 200k-row scans.

NULL follows SQL three-valued logic: comparisons involving NULL yield
NULL, AND/OR use Kleene semantics, and filters keep a row only when the
predicate is ``True`` (not NULL).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from repro.errors import PlanningError

#: A compiled expression: row tuple -> value.
Compiled = Callable[[tuple], object]


class Expr:
    """Base class for expression nodes."""

    __slots__ = ()


@dataclass(frozen=True)
class Literal(Expr):
    value: object


@dataclass(frozen=True)
class Param(Expr):
    """A ``:name`` placeholder, bound at execution time."""

    name: str


@dataclass(frozen=True)
class ColumnRef(Expr):
    """A (possibly qualified) column reference."""

    table: str | None
    column: str


@dataclass(frozen=True)
class FuncCall(Expr):
    name: str
    args: tuple[Expr, ...]


@dataclass(frozen=True)
class BinaryOp(Expr):
    op: str  # '+', '-', '*', '/', '||', '=', '<>', '<', '<=', '>', '>='
    left: Expr
    right: Expr


@dataclass(frozen=True)
class UnaryOp(Expr):
    op: str  # '-', 'NOT'
    operand: Expr


@dataclass(frozen=True)
class BoolOp(Expr):
    op: str  # 'AND' | 'OR'
    terms: tuple[Expr, ...]


@dataclass(frozen=True)
class Between(Expr):
    value: Expr
    low: Expr
    high: Expr
    negated: bool = False


@dataclass(frozen=True)
class InList(Expr):
    value: Expr
    items: tuple[Expr, ...]
    negated: bool = False


@dataclass(frozen=True)
class IsNull(Expr):
    value: Expr
    negated: bool = False


@dataclass(frozen=True)
class Aggregate(Expr):
    """An aggregate call; only valid in SELECT/HAVING of a grouped query."""

    func: str  # COUNT | SUM | MIN | MAX | AVG
    arg: Expr | None  # None means COUNT(*)


@dataclass(frozen=True)
class LexEqual(Expr):
    """The paper's multiscript predicate (Figures 3 and 5).

    ``left LexEQUAL right THRESHOLD t INLANGUAGES {a, b}``.  The planner
    lowers it to the registered ``LEXEQUAL`` UDF, or to an accelerated
    plan when a strategy is installed.
    """

    left: Expr
    right: Expr
    threshold: Expr
    languages: tuple[str, ...] = ()  # empty means wildcard '*'


@dataclass
class RowLayout:
    """Maps column references to positions in executor row tuples."""

    #: Qualified names: (alias_lower, column_lower) -> position.
    qualified: dict[tuple[str, str], int] = field(default_factory=dict)
    #: Unqualified names that are unambiguous: column_lower -> position.
    unqualified: dict[str, int] = field(default_factory=dict)
    #: Unqualified names that appear under several aliases.
    ambiguous: set[str] = field(default_factory=set)
    #: Display names, in position order.
    names: list[str] = field(default_factory=list)

    @classmethod
    def for_table(cls, alias: str, column_names: Sequence[str]) -> RowLayout:
        layout = cls()
        for name in column_names:
            layout.add(alias, name)
        return layout

    def add(self, alias: str, column: str) -> int:
        pos = len(self.names)
        self.names.append(f"{alias}.{column}")
        self.qualified[(alias.lower(), column.lower())] = pos
        key = column.lower()
        if key in self.unqualified:
            self.ambiguous.add(key)
            del self.unqualified[key]
        elif key not in self.ambiguous:
            self.unqualified[key] = pos
        return pos

    def merge(self, other: RowLayout) -> RowLayout:
        """Layout of the concatenation of two rows (for joins)."""
        merged = RowLayout()
        for name in self.names:
            alias, col = name.split(".", 1)
            merged.add(alias, col)
        for name in other.names:
            alias, col = name.split(".", 1)
            merged.add(alias, col)
        return merged

    def position(self, ref: ColumnRef) -> int:
        if ref.table is not None:
            key = (ref.table.lower(), ref.column.lower())
            if key in self.qualified:
                return self.qualified[key]
            raise PlanningError(
                f"unknown column {ref.table}.{ref.column}"
            )
        col = ref.column.lower()
        if col in self.ambiguous:
            raise PlanningError(f"ambiguous column {ref.column!r}")
        if col in self.unqualified:
            return self.unqualified[col]
        raise PlanningError(f"unknown column {ref.column!r}")

    def __len__(self) -> int:
        return len(self.names)


# Scalar built-in functions available without registration.
def _builtin_len(value) -> int | None:
    if value is None:
        return None
    return len(str(value))


_BUILTINS: dict[str, Callable] = {
    "abs": lambda v: None if v is None else abs(v),
    "length": _builtin_len,
    "len": _builtin_len,
    "lower": lambda v: None if v is None else str(v).lower(),
    "upper": lambda v: None if v is None else str(v).upper(),
    "coalesce": lambda *vs: next((v for v in vs if v is not None), None),
}


def _compare(op: str, a, b):
    if a is None or b is None:
        return None
    if op == "=":
        return a == b
    if op == "<>":
        return a != b
    if op == "<":
        return a < b
    if op == "<=":
        return a <= b
    if op == ">":
        return a > b
    if op == ">=":
        return a >= b
    raise PlanningError(f"unknown comparison {op!r}")  # pragma: no cover


def _arith(op: str, a, b):
    if a is None or b is None:
        return None
    if op == "+":
        return a + b
    if op == "-":
        return a - b
    if op == "*":
        return a * b
    if op == "/":
        return a / b
    if op == "||":
        return str(a) + str(b)
    raise PlanningError(f"unknown operator {op!r}")  # pragma: no cover


def compile_expr(
    expr: Expr,
    layout: RowLayout,
    udfs: Callable[[str], Callable],
    params: dict[str, object] | None = None,
) -> Compiled:
    """Compile an expression into a ``row -> value`` closure.

    ``udfs`` resolves function names not covered by the built-ins;
    ``params`` binds :class:`Param` placeholders.
    """
    params = params or {}

    def compile_node(node: Expr) -> Compiled:
        if isinstance(node, Literal):
            value = node.value
            return lambda row: value
        if isinstance(node, Param):
            if node.name not in params:
                raise PlanningError(f"unbound parameter :{node.name}")
            value = params[node.name]
            return lambda row: value
        if isinstance(node, ColumnRef):
            pos = layout.position(node)
            return lambda row: row[pos]
        if isinstance(node, FuncCall):
            arg_fns = [compile_node(a) for a in node.args]
            fn = _BUILTINS.get(node.name.lower()) or udfs(node.name)
            return lambda row: fn(*(a(row) for a in arg_fns))
        if isinstance(node, BinaryOp):
            left = compile_node(node.left)
            right = compile_node(node.right)
            op = node.op
            if op in ("=", "<>", "<", "<=", ">", ">="):
                return lambda row: _compare(op, left(row), right(row))
            return lambda row: _arith(op, left(row), right(row))
        if isinstance(node, UnaryOp):
            operand = compile_node(node.operand)
            if node.op == "-":
                return lambda row: (
                    None if operand(row) is None else -operand(row)
                )
            if node.op == "NOT":
                def negate(row):
                    v = operand(row)
                    return None if v is None else not v
                return negate
            raise PlanningError(f"unknown unary operator {node.op!r}")
        if isinstance(node, BoolOp):
            term_fns = [compile_node(t) for t in node.terms]
            if node.op == "AND":
                def kleene_and(row):
                    result = True
                    for fn in term_fns:
                        v = fn(row)
                        if v is False:
                            return False
                        if v is None:
                            result = None
                    return result
                return kleene_and
            if node.op == "OR":
                def kleene_or(row):
                    result = False
                    for fn in term_fns:
                        v = fn(row)
                        if v is True:
                            return True
                        if v is None:
                            result = None
                    return result
                return kleene_or
            raise PlanningError(f"unknown bool op {node.op!r}")
        if isinstance(node, Between):
            value = compile_node(node.value)
            low = compile_node(node.low)
            high = compile_node(node.high)
            negated = node.negated
            def between(row):
                v, lo, hi = value(row), low(row), high(row)
                if v is None or lo is None or hi is None:
                    return None
                result = lo <= v <= hi
                return not result if negated else result
            return between
        if isinstance(node, InList):
            value = compile_node(node.value)
            item_fns = [compile_node(i) for i in node.items]
            negated = node.negated
            def in_list(row):
                v = value(row)
                if v is None:
                    return None
                result = any(fn(row) == v for fn in item_fns)
                return not result if negated else result
            return in_list
        if isinstance(node, IsNull):
            value = compile_node(node.value)
            negated = node.negated
            if negated:
                return lambda row: value(row) is not None
            return lambda row: value(row) is None
        if isinstance(node, Aggregate):
            raise PlanningError(
                "aggregate used outside GROUP BY context"
            )
        if isinstance(node, LexEqual):
            raise PlanningError(
                "LexEQUAL predicate must be lowered by the planner "
                "before compilation"
            )
        raise PlanningError(f"cannot compile {node!r}")  # pragma: no cover

    return compile_node(expr)


def walk(expr: Expr):
    """Yield every node of an expression tree (pre-order)."""
    yield expr
    if isinstance(expr, FuncCall):
        for a in expr.args:
            yield from walk(a)
    elif isinstance(expr, BinaryOp):
        yield from walk(expr.left)
        yield from walk(expr.right)
    elif isinstance(expr, UnaryOp):
        yield from walk(expr.operand)
    elif isinstance(expr, BoolOp):
        for t in expr.terms:
            yield from walk(t)
    elif isinstance(expr, Between):
        yield from walk(expr.value)
        yield from walk(expr.low)
        yield from walk(expr.high)
    elif isinstance(expr, InList):
        yield from walk(expr.value)
        for i in expr.items:
            yield from walk(i)
    elif isinstance(expr, IsNull):
        yield from walk(expr.value)
    elif isinstance(expr, Aggregate):
        if expr.arg is not None:
            yield from walk(expr.arg)
    elif isinstance(expr, LexEqual):
        yield from walk(expr.left)
        yield from walk(expr.right)
        yield from walk(expr.threshold)


def contains_aggregate(expr: Expr) -> bool:
    return any(isinstance(node, Aggregate) for node in walk(expr))


def format_expr(expr: Expr) -> str:
    """Render an expression as SQL-ish text (EXPLAIN / error messages)."""
    if isinstance(expr, Literal):
        if expr.value is None:
            return "NULL"
        if isinstance(expr.value, bool):
            return "TRUE" if expr.value else "FALSE"
        if isinstance(expr.value, str):
            escaped = expr.value.replace("'", "''")
            return f"'{escaped}'"
        return f"{expr.value:g}" if isinstance(expr.value, float) else str(
            expr.value
        )
    if isinstance(expr, Param):
        return f":{expr.name}"
    if isinstance(expr, ColumnRef):
        if expr.table is None:
            return expr.column
        return f"{expr.table}.{expr.column}"
    if isinstance(expr, FuncCall):
        args = ", ".join(format_expr(a) for a in expr.args)
        return f"{expr.name}({args})"
    if isinstance(expr, BinaryOp):
        return (
            f"{format_expr(expr.left)} {expr.op} {format_expr(expr.right)}"
        )
    if isinstance(expr, UnaryOp):
        if expr.op == "NOT":
            return f"NOT {format_expr(expr.operand)}"
        return f"{expr.op}{format_expr(expr.operand)}"
    if isinstance(expr, BoolOp):
        joiner = f" {expr.op} "
        return "(" + joiner.join(format_expr(t) for t in expr.terms) + ")"
    if isinstance(expr, Between):
        op = "NOT BETWEEN" if expr.negated else "BETWEEN"
        return (
            f"{format_expr(expr.value)} {op} {format_expr(expr.low)} "
            f"AND {format_expr(expr.high)}"
        )
    if isinstance(expr, InList):
        op = "NOT IN" if expr.negated else "IN"
        items = ", ".join(format_expr(i) for i in expr.items)
        return f"{format_expr(expr.value)} {op} ({items})"
    if isinstance(expr, IsNull):
        op = "IS NOT NULL" if expr.negated else "IS NULL"
        return f"{format_expr(expr.value)} {op}"
    if isinstance(expr, Aggregate):
        arg = "*" if expr.arg is None else format_expr(expr.arg)
        return f"{expr.func}({arg})"
    if isinstance(expr, LexEqual):
        text = (
            f"{format_expr(expr.left)} LEXEQUAL {format_expr(expr.right)} "
            f"THRESHOLD {format_expr(expr.threshold)}"
        )
        if expr.languages:
            text += " INLANGUAGES {" + ", ".join(expr.languages) + "}"
        return text
    return repr(expr)  # pragma: no cover - unknown node
