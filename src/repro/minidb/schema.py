"""Table schemas for the minidb engine."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SchemaError
from repro.minidb.values import SqlType


@dataclass(frozen=True)
class Column:
    """One column definition."""

    name: str
    type: SqlType
    nullable: bool = True

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "").isalnum():
            raise SchemaError(f"invalid column name {self.name!r}")


@dataclass(frozen=True)
class TableSchema:
    """A named, ordered collection of columns."""

    name: str
    columns: tuple[Column, ...]
    _positions: dict[str, int] = field(
        init=False, repr=False, compare=False, default_factory=dict
    )

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("table name must be non-empty")
        positions: dict[str, int] = {}
        for idx, col in enumerate(self.columns):
            key = col.name.lower()
            if key in positions:
                raise SchemaError(
                    f"duplicate column {col.name!r} in table {self.name!r}"
                )
            positions[key] = idx
        # frozen dataclass: assign via object.__setattr__
        object.__setattr__(self, "_positions", positions)

    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(col.name for col in self.columns)

    def position(self, column_name: str) -> int:
        """0-based position of a column (case-insensitive)."""
        try:
            return self._positions[column_name.lower()]
        except KeyError:
            raise SchemaError(
                f"table {self.name!r} has no column {column_name!r}"
            ) from None

    def column(self, column_name: str) -> Column:
        return self.columns[self.position(column_name)]

    def has_column(self, column_name: str) -> bool:
        return column_name.lower() in self._positions

    def validate_row(self, row: tuple) -> tuple:
        """Validate a row tuple against the schema; returns the coerced row."""
        if len(row) != len(self.columns):
            raise SchemaError(
                f"table {self.name!r} expects {len(self.columns)} values, "
                f"got {len(row)}"
            )
        coerced = []
        for col, value in zip(self.columns, row):
            checked = col.type.validate(value)
            if checked is None and not col.nullable:
                raise SchemaError(
                    f"column {self.name}.{col.name} is NOT NULL"
                )
            coerced.append(checked)
        return tuple(coerced)
