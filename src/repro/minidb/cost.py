"""The cost model behind cost-based LexEQUAL strategy choice.

Costs are in abstract *DP-cell equivalents*: computing one cell of the
clustered-edit-distance matrix costs 1.  Everything else — B+ tree
probes, posting-list scans, per-row UDF dispatch, process-pool overhead
— is expressed as a multiple of that unit, calibrated against the
repository's own benchmarks (BENCH_baseline / BENCH_parallel).  The
absolute numbers only matter through the *ordering* they induce, which
is what the satellite cost-model suite checks: the chosen strategy must
be the measured-fastest (or within a bounded ratio of it).

Strategy estimates (paper Figs. 9–13):

* ``naive``   — DP against every indexed row;
* ``qgram``   — positional q-gram probes, then DP on the surviving
  candidates (lossless superset);
* ``index``   — one grouped-key probe, DP on the bucket (fast, **may
  false-dismiss** — excluded unless ``allow_lossy``);
* ``parallel`` — vectorized banded DP over all rows, sharded across
  workers (lossless; wins only when the table is large enough to
  amortize pool startup/IPC overhead);
* ``metric``  — BK-tree range query: sublinear in rows, but every node
  visit is a full DP call (lossless; the triangle inequality prunes);
* ``ann``     — articulatory-embedding radius prefilter (quantized
  int8 matrix scan), then the vectorized banded kernel on survivors
  (lossy at the default admission radius — excluded unless
  ``allow_lossy``; recall is pinned by the quality harness).
"""

from __future__ import annotations

from dataclasses import dataclass

#: Cost of one B+ tree descent.
PROBE_COST = 8.0
#: Cost of scanning one posting entry during q-gram filtering.
POSTING_COST = 0.15
#: Per-candidate-row overhead (fetch + UDF recheck dispatch).
ROW_OVERHEAD = 4.0
#: Throughput multiple of the vectorized banded kernel over scalar DP.
VECTOR_SPEEDUP = 8.0
#: Fixed DP-cell-equivalent cost of engaging the process pool.
PARALLEL_OVERHEAD = 2.0e5
#: A BK-tree range query visits ~rows**METRIC_EXPONENT nodes (each a
#: full distance evaluation); empirically between log and linear.
METRIC_EXPONENT = 0.65
#: Per-row cost of the quantized int8 embedding scan (one L1 distance
#: over a ~36-dim vector is far cheaper than one DP cell row).
ANN_SCAN_COST = 0.5

LOSSLESS = ("naive", "qgram", "parallel", "metric")
ALL_STRATEGIES = ("naive", "qgram", "index", "parallel", "metric", "ann")


@dataclass(frozen=True)
class StrategyEstimate:
    """One strategy's predicted candidate count and total cost."""

    strategy: str
    est_rows: float  # rows surviving to the UDF recheck
    est_cost: float  # DP-cell equivalents, probes included
    lossless: bool

    def describe(self) -> str:
        return (
            f"{self.strategy}: est_rows={self.est_rows:.0f} "
            f"est_cost={self.est_cost:.0f}"
            + ("" if self.lossless else " (lossy)")
        )


def estimate_strategies(
    *,
    rows: int,
    query_len: int,
    avg_plen: float,
    qgram_sel: float | None = None,
    index_sel: float | None = None,
    avg_posting: float | None = None,
    ann_sel: float | None = None,
    workers: int | None = None,
    available: tuple[str, ...] = ALL_STRATEGIES,
) -> list[StrategyEstimate]:
    """Estimate every available strategy for one query.

    ``qgram_sel``/``index_sel``/``ann_sel`` are measured candidate
    fractions from the stats catalog (see :mod:`repro.minidb.stats`);
    when missing, conservative defaults are used (q-grams keep 10% of
    rows, a grouped-key bucket holds ``1/sqrt(rows)`` of them, the
    embedding radius admits 10%).
    """
    rows = max(0, int(rows))
    qlen = max(1, int(query_len))
    plen = max(1.0, float(avg_plen))
    row_dp = qlen * plen  # DP cells for one candidate row
    if qgram_sel is None:
        qgram_sel = 0.10
    if index_sel is None:
        index_sel = 1.0 / max(1.0, float(rows) ** 0.5)
    if avg_posting is None:
        avg_posting = max(1.0, rows * qgram_sel)
    estimates = []
    if "naive" in available:
        estimates.append(
            StrategyEstimate(
                "naive", rows, rows * (row_dp + ROW_OVERHEAD), True
            )
        )
    if "qgram" in available:
        grams = max(1, qlen)  # positional q-grams per query ≈ tokens
        cand = rows * qgram_sel
        probe = grams * (PROBE_COST + avg_posting * POSTING_COST)
        estimates.append(
            StrategyEstimate(
                "qgram", cand, probe + cand * (row_dp + ROW_OVERHEAD), True
            )
        )
    if "index" in available:
        cand = rows * index_sel
        estimates.append(
            StrategyEstimate(
                "index",
                cand,
                PROBE_COST + cand * (row_dp + ROW_OVERHEAD),
                False,
            )
        )
    if "parallel" in available:
        shards = max(1, workers or 1)
        vector_cost = rows * row_dp / (VECTOR_SPEEDUP * min(shards, 16))
        estimates.append(
            StrategyEstimate(
                "parallel",
                rows * index_sel,  # exact matches ≈ bucket selectivity
                PARALLEL_OVERHEAD + vector_cost,
                True,
            )
        )
    if "metric" in available:
        calls = min(float(rows), float(rows) ** METRIC_EXPONENT)
        estimates.append(
            StrategyEstimate(
                "metric", calls, calls * (row_dp + ROW_OVERHEAD), True
            )
        )
    if "ann" in available:
        if ann_sel is None:
            ann_sel = 0.10
        cand = rows * ann_sel
        # Survivors are verified by the vectorized banded kernel, not
        # the scalar UDF, so per-candidate DP is discounted like the
        # parallel path (single shard: no pool overhead to amortize).
        verify = cand * (row_dp / VECTOR_SPEEDUP + ROW_OVERHEAD)
        estimates.append(
            StrategyEstimate(
                "ann", cand, rows * ANN_SCAN_COST + verify, False
            )
        )
    return estimates


def choose(
    estimates: list[StrategyEstimate], *, allow_lossy: bool = False
) -> StrategyEstimate:
    """The cheapest (optionally lossless-only) estimate."""
    eligible = [
        e for e in estimates if allow_lossy or e.lossless
    ] or estimates
    return min(eligible, key=lambda e: e.est_cost)
