"""Exception hierarchy for the LexEQUAL reproduction.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch a single base class.  Subsystems raise the more
specific subclasses below; nothing in the library raises bare ``Exception``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class PhonemeError(ReproError):
    """A phoneme symbol is unknown or an IPA string cannot be parsed."""


class TTPError(ReproError):
    """A text-to-phoneme conversion failed."""


class UnsupportedLanguageError(TTPError):
    """No TTP converter is registered for the requested language.

    This corresponds to the ``NORESOURCE`` outcome of the LexEQUAL
    algorithm (paper Figure 8): the operator cannot decide a match when
    either operand's language lacks an IPA transformation.
    """

    def __init__(self, language: str):
        super().__init__(f"no text-to-phoneme converter for language {language!r}")
        self.language = language


class MatchConfigError(ReproError):
    """A matching parameter is outside its legal range."""


class DatabaseError(ReproError):
    """Base class for errors raised by the ``minidb`` engine."""


class SchemaError(DatabaseError):
    """A table/column definition or reference is invalid."""


class StorageError(DatabaseError):
    """A durable-storage operation failed (WAL, checkpoint, snapshot).

    Raised by :mod:`repro.storage` for torn or corrupt on-disk state
    that cannot be recovered silently, and by its fault-injection
    failpoints.
    """


class SQLSyntaxError(DatabaseError):
    """The SQL text could not be parsed."""

    def __init__(self, message: str, position: int | None = None):
        suffix = f" (at offset {position})" if position is not None else ""
        super().__init__(message + suffix)
        self.position = position


class PlanningError(DatabaseError):
    """The planner could not produce a physical plan for a query."""


class ExecutionError(DatabaseError):
    """A physical operator failed while producing rows."""


class DatasetError(ReproError):
    """A dataset could not be built, loaded or validated."""


class ServerError(ReproError):
    """Base class for errors raised by the ``repro.server`` subsystem."""


class ProtocolError(ServerError):
    """A request or response violates the newline-delimited JSON protocol.

    Carries the wire-level error ``code`` (see ``repro.server.protocol``)
    so handlers can map it onto a structured error response.
    """

    def __init__(self, code: str, message: str):
        super().__init__(message)
        self.code = code


class ServerConnectionError(ServerError):
    """The client could not connect, or the connection dropped mid-request."""


class TransportError(ServerConnectionError):
    """Any client-side transport failure, normalized.

    The client maps every socket-level failure (refused connection,
    reset, EOF mid-response, socket timeout) onto this one type so
    callers and the CLI handle exactly one error, carrying the ``op``
    that was in flight and its ``request_id`` (both ``None`` for
    connect-time failures).
    """

    def __init__(
        self,
        message: str,
        *,
        op: str | None = None,
        request_id=None,
    ):
        context = ""
        if op is not None:
            context = f" (op {op!r}"
            if request_id is not None:
                context += f", request id {request_id}"
            context += ")"
        super().__init__(message + context)
        self.op = op
        self.request_id = request_id


class CircuitOpenError(ServerError):
    """The client's circuit breaker is open: the endpoint is failing.

    Raised *without* touching the network; carries the op whose breaker
    rejected the call and the seconds until the next half-open probe.
    """

    def __init__(self, op: str, retry_after: float):
        super().__init__(
            f"circuit breaker open for op {op!r}; "
            f"next probe in {max(retry_after, 0.0):.2f}s"
        )
        self.op = op
        self.retry_after = retry_after


class DeadlineExceededError(ReproError):
    """A cooperative per-request deadline expired mid-computation.

    Raised from the DP matching loops when the thread-local deadline
    armed by the worker pool passes (see :mod:`repro.deadline`); the
    server maps it onto the ``timeout`` wire code.
    """


class FaultInjectedError(ReproError):
    """An error deliberately raised by a fault-injection failpoint."""


class RequestFailedError(ServerError):
    """The server answered a request with a structured error response."""

    def __init__(self, code: str, message: str):
        super().__init__(f"{code}: {message}")
        self.code = code
        self.message = message
