"""Cost model + cost-based strategy choice (satellite of ISSUE 7).

Three layers under test:

* :mod:`repro.minidb.cost` — the estimates themselves: scaling shape,
  the lossless-only rule, selectivity sensitivity;
* :func:`repro.core.strategies.choose_strategy` — cost-based choice
  over a live catalog, checked against *measured* strategy latency
  (chosen must be the fastest, or within a bounded ratio of it);
* EXPLAIN / EXPLAIN ANALYZE — golden fragments proving estimated rows
  and cost surface next to actuals.
"""

from __future__ import annotations

import random
import time

import pytest

from repro.core.config import MatchConfig
from repro.core.integration import demo_books_db
from repro.core.matcher import LexEqualMatcher
from repro.core.strategies import (
    STRATEGY_CLASSES,
    NameCatalog,
    choose_strategy,
)
from repro.data.generator import generate_performance_dataset
from repro.data.lexicon import build_lexicon
from repro.minidb import cost

SEED = 20040314


# ----------------------------------------------------------- estimates


class TestEstimates:
    def _by_name(self, **kwargs):
        return {
            e.strategy: e for e in cost.estimate_strategies(**kwargs)
        }

    def test_naive_scales_linearly_in_rows(self):
        small = self._by_name(rows=100, query_len=6, avg_plen=6)["naive"]
        big = self._by_name(rows=10_000, query_len=6, avg_plen=6)["naive"]
        assert big.est_cost == pytest.approx(100 * small.est_cost)
        assert big.est_rows == 10_000

    def test_qgram_beats_naive_when_selective(self):
        ests = self._by_name(
            rows=10_000, query_len=6, avg_plen=6, qgram_sel=0.01
        )
        assert ests["qgram"].est_cost < ests["naive"].est_cost
        assert ests["qgram"].est_rows == pytest.approx(100)

    def test_qgram_probe_overhead_wins_on_tiny_tables(self):
        # 2 rows: scanning both beats paying per-gram B+ tree probes.
        ests = self._by_name(
            rows=2, query_len=8, avg_plen=8, qgram_sel=1.0, avg_posting=2
        )
        assert ests["naive"].est_cost < ests["qgram"].est_cost

    def test_index_is_cheap_but_lossy(self):
        ests = self._by_name(rows=10_000, query_len=6, avg_plen=6)
        assert ests["index"].est_cost < ests["qgram"].est_cost
        assert not ests["index"].lossless
        assert not ests["ann"].lossless
        assert all(
            e.lossless
            for name, e in ests.items()
            if name not in ("index", "ann")
        )

    def test_parallel_amortizes_only_at_scale(self):
        small = self._by_name(
            rows=1_000, query_len=6, avg_plen=6, workers=8
        )
        big = self._by_name(
            rows=1_000_000, query_len=6, avg_plen=6, workers=8
        )
        assert small["parallel"].est_cost > small["naive"].est_cost
        assert big["parallel"].est_cost < big["naive"].est_cost

    def test_metric_is_sublinear(self):
        ests = self._by_name(rows=100_000, query_len=6, avg_plen=6)
        assert ests["metric"].est_cost < ests["naive"].est_cost
        # ~rows**0.65 distance calls, far fewer than a scan...
        assert ests["metric"].est_rows < 100_000 ** 0.75
        # ...but never *more* calls than rows exist.
        tiny = self._by_name(rows=2, query_len=6, avg_plen=6)["metric"]
        assert tiny.est_rows <= 2

    def test_choose_excludes_lossy_by_default(self):
        ests = cost.estimate_strategies(
            rows=10_000, query_len=6, avg_plen=6
        )
        lossless = cost.choose(ests)
        assert lossless.lossless
        lossy_ok = cost.choose(ests, allow_lossy=True)
        assert lossy_ok.strategy == "index"
        assert lossy_ok.est_cost <= lossless.est_cost

    def test_describe_mentions_lossy(self):
        ests = {
            e.strategy: e
            for e in cost.estimate_strategies(
                rows=10, query_len=4, avg_plen=4
            )
        }
        assert "(lossy)" in ests["index"].describe()
        assert "(lossy)" not in ests["qgram"].describe()


# ------------------------------------------------- choice vs. measured


def _seeded_catalog(rows: int) -> tuple[NameCatalog, list[str]]:
    matcher = LexEqualMatcher(MatchConfig(threshold=0.25))
    catalog = NameCatalog(matcher)
    items = list(generate_performance_dataset(build_lexicon(), rows))
    for item in items:
        catalog.add(item.name, item.language, ipa=item.ipa)
    rng = random.Random(SEED)
    english = [it.name for it in items if it.language == "english"]
    return catalog, rng.sample(english, min(4, len(english)))


def _mean_latency(strategy, queries, repeats=3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for query in queries:
            strategy.select(query)
        best = min(best, time.perf_counter() - start)
    return best


class TestChooseStrategy:
    def test_choice_is_cheapest_eligible_estimate(self):
        catalog, queries = _seeded_catalog(200)
        choice = choose_strategy(catalog, queries[0])
        eligible = [e for e in choice.estimates if e.lossless]
        assert choice.estimate.est_cost == min(
            e.est_cost for e in eligible
        )
        assert isinstance(
            choice.strategy, STRATEGY_CLASSES[choice.name]
        )

    def test_lossy_needs_opt_in(self):
        catalog, queries = _seeded_catalog(200)
        assert choose_strategy(catalog, queries[0]).name != "index"
        lossy = choose_strategy(
            catalog, queries[0], allow_lossy=True
        )
        assert lossy.name == "index"

    def test_available_restricts_the_field(self):
        catalog, queries = _seeded_catalog(100)
        only = choose_strategy(
            catalog, queries[0], available=("naive",)
        )
        assert only.name == "naive"
        assert [e.strategy for e in only.estimates] == ["naive"]

    def test_chosen_tracks_measured_fastest(self):
        """The cost model's pick must be the measured-fastest lossless
        strategy — or within a generous constant of it (timings on
        shared CI hosts are noisy; the *ordering* vs. naive must hold
        strictly)."""
        catalog, queries = _seeded_catalog(400)
        choice = choose_strategy(catalog, queries[0])
        assert choice.name != "naive"  # 400 rows: a scan cannot win
        timings = {
            name: _mean_latency(klass(catalog), queries)
            for name, klass in STRATEGY_CLASSES.items()
            # lossy (index, ann): not eligible for this choice
            if name not in ("index", "ann")
        }
        fastest = min(timings.values())
        assert timings[choice.name] <= max(5.0 * fastest, 1e-3)
        assert timings[choice.name] < timings["naive"]


# --------------------------------------------------------- EXPLAIN


class TestExplainEstimates:
    def test_explain_shows_est_rows_and_cost(self):
        db = demo_books_db("auto", LexEqualMatcher())
        plan = db.explain(
            "SELECT title FROM books "
            "WHERE author LEXEQUAL 'Nehru' THRESHOLD 0.25"
        )
        assert "est_rows=" in plan and "est_cost=" in plan
        assert "accelerator" in plan

    def test_explain_analyze_shows_estimates_next_to_actuals(self):
        db = demo_books_db("auto", LexEqualMatcher())
        plan = db.explain(
            "SELECT title FROM books "
            "WHERE author LEXEQUAL 'Nehru' THRESHOLD 0.25",
            analyze=True,
        )
        assert "est_rows=" in plan and "est_cost=" in plan
        assert "rows=" in plan and "loops=" in plan

    def test_analyze_populates_stats_catalog(self):
        db = demo_books_db("qgram", LexEqualMatcher())
        updated = db.analyze()
        assert updated > 0
        payload = db.stats.to_dict()
        assert payload, "ANALYZE left the stats catalog empty"
        plan = db.explain(
            "SELECT title FROM books "
            "WHERE author LEXEQUAL 'Nehru' THRESHOLD 0.25"
        )
        assert "est_rows=" in plan
