"""Tests for positional q-grams and the length/count/position filters."""

import pytest

from repro.errors import MatchConfigError
from repro.matching.editdist import edit_distance
from repro.matching.qgrams import (
    END_SYMBOL,
    START_SYMBOL,
    count_filter,
    count_filter_threshold,
    length_filter,
    matching_qgram_pairs,
    passes_filters,
    position_filter,
    positional_qgrams,
    qgram_profile,
)


class TestPositionalQGrams:
    def test_count_is_n_plus_q_minus_1(self):
        for q in (1, 2, 3):
            grams = positional_qgrams("lexequal", q)
            assert len(grams) == len("lexequal") + q - 1

    def test_sentinels_present(self):
        grams = positional_qgrams("ab", 3)
        assert grams[0].gram == (START_SYMBOL, START_SYMBOL, "a")
        assert grams[-1].gram == ("b", END_SYMBOL, END_SYMBOL)

    def test_positions_one_based(self):
        grams = positional_qgrams("abc", 2)
        assert [g.pos for g in grams] == [1, 2, 3, 4]

    def test_q_one_has_no_sentinels(self):
        grams = positional_qgrams("abc", 1)
        assert [g.gram for g in grams] == [("a",), ("b",), ("c",)]

    def test_invalid_q(self):
        with pytest.raises(MatchConfigError):
            positional_qgrams("abc", 0)

    def test_empty_string(self):
        grams = positional_qgrams("", 2)
        assert len(grams) == 1  # the sentinel-only gram

    def test_profile_is_bag(self):
        profile = qgram_profile("aaa", 2)
        assert profile[("a", "a")] == 2


class TestFilters:
    def test_length_filter(self):
        assert length_filter(5, 7, 2)
        assert not length_filter(5, 8, 2)
        assert length_filter(5, 5, 0)

    def test_count_threshold_formula(self):
        # max(l1,l2) - 1 - (k-1)*q
        assert count_filter_threshold(8, 8, 2, 2) == 5
        assert count_filter_threshold(8, 6, 1, 3) == 7

    def test_count_filter_identical_strings(self):
        assert count_filter("lexequal", "lexequal", 0, 2)

    def test_count_filter_rejects_disjoint(self):
        assert not count_filter("aaaa", "bbbb", 1, 2)

    def test_position_filter_rejects_shifted(self):
        # Same grams but positions differ by more than k.
        assert not position_filter("abcdefgh", "efghabcd", 1, 2)

    def test_vacuous_for_large_k(self):
        assert count_filter("ab", "xy", 10, 2)

    def test_matching_pairs_counts_join_pairs(self):
        a = positional_qgrams("aa", 2)
        b = positional_qgrams("aa", 2)
        assert matching_qgram_pairs(a, b, 10) >= len(a)


class TestFilterSoundness:
    """The filters must never reject a pair within unit edit distance k."""

    @pytest.mark.parametrize("seed", range(5))
    def test_no_false_dismissals_random(self, seed):
        import random

        rng = random.Random(seed)
        alphabet = "abcd"
        for _ in range(400):
            a = "".join(
                rng.choice(alphabet) for _ in range(rng.randint(0, 10))
            )
            b = "".join(
                rng.choice(alphabet) for _ in range(rng.randint(0, 10))
            )
            q = rng.choice([2, 3])
            distance = edit_distance(a, b)
            for k in (distance, distance + 1):
                assert passes_filters(a, b, k, q), (a, b, k, q)

    def test_no_false_dismissals_near_neighbors(self):
        import random

        rng = random.Random(99)
        base = "lexequaloperator"
        for _ in range(200):
            chars = list(base)
            ops = rng.randint(0, 3)
            for _ in range(ops):
                kind = rng.choice(["sub", "ins", "del"])
                pos = rng.randrange(len(chars)) if chars else 0
                if kind == "sub" and chars:
                    chars[pos] = rng.choice("abcd")
                elif kind == "ins":
                    chars.insert(pos, rng.choice("abcd"))
                elif chars:
                    del chars[pos]
            mutated = "".join(chars)
            k = edit_distance(base, mutated)
            assert passes_filters(base, mutated, k, 2)
