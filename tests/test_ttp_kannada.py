"""Tests for the Kannada converter and its transliteration channel."""

import pytest

from repro.data.transliterate import (
    romanization_to_indic_phonemes,
    to_kannada,
)
from repro.errors import TTPError
from repro.ttp.kannada import KannadaConverter


@pytest.fixture(scope="module")
def kan() -> KannadaConverter:
    return KannadaConverter()


class TestKannadaBasics:
    @pytest.mark.parametrize(
        "text,ipa",
        [
            ("ರಾಮ", "raːma"),
            ("ನೆಹರು", "nehəru".replace("ə", "a")),
            ("ಕೃಷ್ಣ", "kriʂɳa"),
            ("ಬೆಂಗಳೂರು", "beŋgaɭuːru"),
        ],
    )
    def test_pronunciations(self, kan, text, ipa):
        assert kan.to_ipa(text) == ipa

    def test_no_final_vowel_deletion(self, kan):
        # Unlike Hindi, the final inherent vowel is pronounced.
        assert kan.to_phonemes("ರಾಮ")[-1] == "a"

    def test_virama_suppresses_vowel(self, kan):
        assert kan.to_phonemes("ಕ್ರಮ") == ("k", "r", "a", "m", "a")

    def test_short_long_mid_vowels_contrast(self, kan):
        assert kan.to_phonemes("ಎ") == ("e",)
        assert kan.to_phonemes("ಏ") == ("eː",)
        assert kan.to_phonemes("ಒ") == ("o",)
        assert kan.to_phonemes("ಓ") == ("oː",)

    def test_aspirates_preserved(self, kan):
        assert kan.to_phonemes("ಭರತ")[0] == "bʱ"
        assert kan.to_phonemes("ಖಗ")[0] == "kʰ"

    def test_retroflex_lateral(self, kan):
        assert "ɭ" in kan.to_phonemes("ಳಿ".replace("ಳಿ", "ಕಳಿ"))

    def test_anusvara_assimilation(self, kan):
        assert "ŋ" in kan.to_phonemes("ಗಂಗಾ")
        assert "m" in kan.to_phonemes("ಸಂಪತ")

    def test_unknown_character_raises(self, kan):
        with pytest.raises(TTPError):
            kan.to_phonemes("ರಾQಮ")

    def test_matra_without_consonant_raises(self, kan):
        with pytest.raises(TTPError):
            kan.to_phonemes("ಾ")


class TestKannadaChannel:
    def test_transliteration_roundtrip(self, kan):
        for name in ["Krishna", "Gopal", "Meena", "Sundaram", "Nehru"]:
            intent = romanization_to_indic_phonemes(name)
            written = to_kannada(intent)
            assert kan.to_phonemes(written)

    def test_every_inventory_phoneme_spellable(self):
        from repro.phonetics.inventory import INVENTORY

        for sym in INVENTORY:
            to_kannada((sym,))

    def test_four_script_lexicon(self):
        from repro.data.lexicon import build_lexicon

        lexicon = build_lexicon(
            limit_per_domain=10,
            languages=("english", "hindi", "tamil", "kannada"),
        )
        for entries in lexicon.groups().values():
            assert sorted(e.language for e in entries) == [
                "english",
                "hindi",
                "kannada",
                "tamil",
            ]

    def test_cross_script_matching_with_kannada(self, matcher):
        from repro.minidb.values import LangText

        assert matcher.matches("Krishna", LangText("ಕೃಷ್ಣ", "kannada"))
        assert matcher.matches("Nehru", "ನೆಹರು")

    def test_kannada_detected_from_script(self):
        from repro.ttp.registry import detect_language

        assert detect_language("ನೆಹರು") == "kannada"
