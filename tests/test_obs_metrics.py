"""Tests for the metrics registry (repro.obs)."""

import json
import threading

import pytest

from repro import obs
from repro.obs.registry import (
    Counter,
    Histogram,
    InMemoryMetricsRegistry,
    NullMetricsRegistry,
    Timer,
    _NULL_INSTRUMENT,
)


@pytest.fixture()
def metrics():
    """A fresh enabled registry, restored to disabled afterwards."""
    obs.disable()
    registry = obs.enable()
    yield registry
    obs.disable()


class TestInstruments:
    def test_counter(self):
        c = Counter("x")
        assert c.value == 0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_timer_record_and_context(self):
        t = Timer("x")
        t.record(0.5)
        with t.time():
            pass
        assert t.count == 2
        assert t.seconds >= 0.5

    def test_histogram_summary(self):
        h = Histogram("x")
        assert h.mean is None
        for v in (1, 5, 3):
            h.observe(v)
        assert h.count == 3
        assert h.total == 9
        assert h.min == 1
        assert h.max == 5
        assert h.mean == 3


class TestNullRegistry:
    def test_disabled_by_default(self):
        obs.disable()
        assert not obs.is_enabled()
        assert isinstance(obs.get_registry(), NullMetricsRegistry)

    def test_instruments_are_shared_noop_singleton(self):
        registry = NullMetricsRegistry()
        assert registry.counter("a") is _NULL_INSTRUMENT
        assert registry.timer("b") is _NULL_INSTRUMENT
        assert registry.histogram("c") is _NULL_INSTRUMENT

    def test_mutators_are_noops(self):
        obs.disable()
        obs.incr("never", 100)
        obs.observe("never", 100)
        with obs.timed("never"):
            pass
        data = obs.snapshot()
        assert data["enabled"] is False
        assert data["counters"] == {}

    def test_format_snapshot_disabled(self):
        obs.disable()
        assert "disabled" in obs.format_snapshot()


class TestEnableDisable:
    def test_enable_installs_inmemory(self, metrics):
        assert obs.is_enabled()
        assert isinstance(metrics, InMemoryMetricsRegistry)

    def test_reenable_keeps_registry_and_values(self, metrics):
        obs.incr("kept")
        assert obs.enable() is metrics
        assert obs.snapshot()["counters"]["kept"] == 1

    def test_disable_drops_values(self, metrics):
        obs.incr("gone")
        obs.disable()
        obs.enable()
        assert "gone" not in obs.snapshot()["counters"]

    def test_set_registry(self):
        registry = InMemoryMetricsRegistry()
        assert obs.set_registry(registry) is registry
        assert obs.get_registry() is registry
        obs.disable()


class TestGlobalApi:
    def test_incr_observe_timed_snapshot(self, metrics):
        obs.incr("c", 2)
        obs.observe("h", 7)
        with obs.timed("t"):
            pass
        data = obs.snapshot()
        assert data["counters"]["c"] == 2
        assert data["histograms"]["h"]["count"] == 1
        assert data["histograms"]["h"]["mean"] == 7
        assert data["timers"]["t"]["count"] == 1

    def test_snapshot_is_json_serializable(self, metrics):
        obs.incr("c")
        obs.observe("h", 1.5)
        json.dumps(obs.snapshot())

    def test_format_snapshot_lists_all_sections(self, metrics):
        obs.incr("my.counter")
        obs.observe("my.histogram", 3)
        with obs.timed("my.timer"):
            pass
        text = obs.format_snapshot()
        assert "my.counter" in text
        assert "my.histogram" in text
        assert "my.timer" in text

    def test_reset(self, metrics):
        obs.incr("c")
        metrics.reset()
        assert obs.snapshot()["counters"] == {}

    def test_thread_safety_smoke(self, metrics):
        def work():
            for _ in range(1000):
                obs.incr("shared")

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert obs.snapshot()["counters"]["shared"] == 4000


class TestInstrumentedLibrary:
    def test_edit_distance_records_dp_work(self, metrics):
        from repro.matching.editdist import edit_distance

        edit_distance("kitten", "sitting")
        counters = obs.snapshot()["counters"]
        assert counters["matching.dp.calls"] == 1
        assert counters["matching.dp.cells"] == 6 * 7

    def test_banded_cutoff_records_fewer_cells(self, metrics):
        from repro.matching.editdist import edit_distance_within

        assert edit_distance_within("kitten", "sitting", 3.0) == 3.0
        counters = obs.snapshot()["counters"]
        assert 0 < counters["matching.dp.cells"] < 6 * 7

    def test_filters_record_pass_and_reject(self, metrics):
        from repro.matching.qgrams import passes_filters

        assert passes_filters(tuple("nehru"), tuple("neru"), k=2.0)
        assert not passes_filters(tuple("nehru"), tuple("aa"), k=1.0)
        counters = obs.snapshot()["counters"]
        assert counters["filters.length.pass"] == 1
        assert counters["filters.length.reject"] == 1
        assert counters["filters.position.pass"] == 1

    def test_btree_probes_and_misses(self, metrics):
        # BPlusTree.search itself is deliberately uninstrumented; the
        # phonetic pipeline batches probe accounting at its call sites.
        from repro.core.engine import create_phonetic_accelerator
        from repro.core.matcher import LexEqualMatcher
        from repro.minidb.catalog import Database

        db = Database()
        db.execute("CREATE TABLE t (id INTEGER, author TEXT)")
        db.execute("INSERT INTO t VALUES (1, 'Nehru')")
        accelerator = create_phonetic_accelerator(
            db, "t", "author", LexEqualMatcher(), method="index"
        )
        obs.get_registry().reset()
        assert accelerator.candidate_rowids("Nehru", 0.25)
        counters = obs.snapshot()["counters"]
        assert counters["btree.probes"] == 1
        assert "btree.probe_misses" not in counters

        obs.get_registry().reset()
        assert accelerator.candidate_rowids("Xylophone", 0.25) == []
        counters = obs.snapshot()["counters"]
        assert counters["btree.probes"] == 1
        assert counters["btree.probe_misses"] == 1

    def test_ttp_cache_hits_and_misses(self, metrics):
        from repro.ttp.registry import TTPRegistry
        from repro.ttp.base import builtin_converters

        registry = TTPRegistry(builtin_converters())
        registry.transform("Nehru", "english")
        registry.transform("Nehru", "english")
        counters = obs.snapshot()["counters"]
        assert counters["ttp.cache.misses"] == 1
        assert counters["ttp.cache.hits"] == 1

    def test_strategy_publishes_stats(self, metrics):
        from repro.core import LexEqualMatcher, NaiveUdfStrategy, NameCatalog

        catalog = NameCatalog(LexEqualMatcher())
        catalog.add("Nehru", "english")
        catalog.add("Nero", "english")
        strategy = NaiveUdfStrategy(catalog)
        results = strategy.select("Nehru")
        counters = obs.snapshot()["counters"]
        assert counters["strategy.naive-udf.invocations"] == 1
        assert counters["strategy.naive-udf.rows_considered"] == 2
        assert (
            counters["strategy.naive-udf.udf_calls"]
            == strategy.last_stats.udf_calls
        )
        assert counters["strategy.naive-udf.results"] == len(results)
