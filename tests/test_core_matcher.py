"""Tests for LexEqualMatcher."""

import pytest

from repro.core.config import MatchConfig
from repro.core.matcher import LexEqualMatcher
from repro.core.operator import MatchOutcome
from repro.errors import TTPError
from repro.minidb.values import LangText


class TestTransforms:
    def test_phonemes_for_tagged_text(self, matcher):
        phonemes = matcher.phonemes(LangText("नेहरु", "hindi"))
        assert phonemes == ("n", "e", "h", "r", "u")  # folded

    def test_phonemes_detects_script(self, matcher):
        assert matcher.phonemes("நேரு") == ("n", "e", "r", "u")

    def test_ipa_string(self, matcher):
        assert matcher.ipa("Nehru") == "nɛhru"

    def test_unknown_script_raises(self, matcher):
        with pytest.raises(TTPError):
            matcher.phonemes("!!!")

    def test_grouped_key_consistency(self, matcher):
        assert matcher.grouped_key_of("Nehru") == matcher.grouped_key_of(
            LangText("नेहरु", "hindi")
        )


class TestMatching:
    def test_match_outcomes(self, matcher):
        assert matcher.match("Nehru", LangText("नेहरु", "hindi")) is (
            MatchOutcome.TRUE
        )
        assert matcher.match("Smith", LangText("नेहरु", "hindi")) is (
            MatchOutcome.FALSE
        )
        assert matcher.match("Nehru", LangText("x", "klingon")) is (
            MatchOutcome.NORESOURCE
        )

    def test_matches_boolean(self, matcher):
        assert matcher.matches("Gandhi", LangText("गांधी", "hindi"))
        assert not matcher.matches("Gandhi", LangText("x", "klingon"))

    def test_phoneme_level_entry_points(self, matcher):
        left = matcher.phonemes("Nehru")
        right = matcher.phonemes(LangText("नेहरु", "hindi"))
        distance = matcher.phoneme_distance(left, right)
        assert distance <= matcher.budget(len(left), len(right))
        assert matcher.phonemes_match(left, right)

    def test_ipa_match(self, matcher):
        assert matcher.ipa_match("nɛhru", "nehru")
        assert not matcher.ipa_match("nɛhru", "smiθ")

    def test_stricter_threshold_matches_less(self):
        loose = LexEqualMatcher(MatchConfig(threshold=0.5))
        strict = LexEqualMatcher(MatchConfig(threshold=0.05))
        pair = ("Nehru", LangText("நேரு", "tamil"))
        assert loose.matches(*pair)
        assert not strict.matches(*pair)


class TestExplain:
    def test_explain_match(self, matcher):
        exp = matcher.explain("Nehru", LangText("नेहरु", "hindi"))
        assert exp.outcome is MatchOutcome.TRUE
        assert exp.left_language == "english"
        assert exp.right_language == "hindi"
        assert exp.distance is not None
        assert exp.distance <= exp.budget
        assert exp.left_ipa and exp.right_ipa

    def test_explain_noresource(self, matcher):
        exp = matcher.explain("Nehru", LangText("x", "klingon"))
        assert exp.outcome is MatchOutcome.NORESOURCE
        assert exp.distance is None

    def test_str_rendering(self, matcher):
        text = str(matcher.explain("Nehru", "Nero"))
        assert "Nehru" in text and "Nero" in text


class TestSearch:
    CANDIDATES = [
        "Nero",
        LangText("नेहरु", "hindi"),
        LangText("நேரு", "tamil"),
        "Smith",
        LangText("गांधी", "hindi"),
    ]

    def test_search_all_languages(self, matcher):
        results = matcher.search("Nehru", self.CANDIDATES)
        assert LangText("नेहरु", "hindi") in results
        assert LangText("நேரு", "tamil") in results
        assert "Smith" not in results

    def test_search_language_restriction(self, matcher):
        results = matcher.search(
            "Nehru", self.CANDIDATES, languages=("hindi",)
        )
        assert results == [LangText("नेहरु", "hindi")]

    def test_search_skips_unsupported(self, matcher):
        results = matcher.search(
            "Nehru", [LangText("x", "klingon"), LangText("नेहरु", "hindi")]
        )
        assert results == [LangText("नेहरु", "hindi")]

    def test_search_preserves_order(self, matcher):
        results = matcher.search("Nehru", self.CANDIDATES)
        indexes = [self.CANDIDATES.index(r) for r in results]
        assert indexes == sorted(indexes)
