"""Unit tests for the articulatory-embedding tier (DESIGN.md §12).

The property suite proves the lower-bound and quantization inequalities
on generated strings; this file pins the concrete API contracts — model
shape, CSR batch encoding, index maintenance, snapshot round-trips,
block chunking and deadline cancellation.
"""

from __future__ import annotations

import random
import time

import numpy as np
import pytest

from repro import deadline
from repro.errors import DeadlineExceededError, MatchConfigError
from repro.matching.batch import EncodedCosts
from repro.matching.costs import ClusteredCost, LevenshteinCost
from repro.matching.embed import (
    DIM,
    QUANT_SCALE,
    EmbeddingModel,
    QuantizedMatrixIndex,
    VPTree,
    quantize,
    quantized_radius,
)

SEED = 20040314

SYMBOLS = [
    "p", "b", "t", "d", "ʈ", "k", "g", "tʃ", "dʒ", "s", "z", "ʃ",
    "m", "n", "ŋ", "r", "l", "j", "w", "v", "h", "f",
    "a", "e", "i", "o", "u", "ə", "ɛ", "ɔ",
]


def _model(costs=None) -> EmbeddingModel:
    return EmbeddingModel(EncodedCosts(costs or ClusteredCost(0.25), SYMBOLS))


def _strings(rng: random.Random, count: int, max_len: int = 10):
    return [
        tuple(
            rng.choice(SYMBOLS)
            for _ in range(rng.randint(1, max_len))
        )
        for _ in range(count)
    ]


class TestEmbeddingModel:
    def test_dim_is_prefix_plus_histogram_groups(self):
        model = _model()
        # The clustered model histograms per phoneme cluster, so the
        # width is the fixed articulatory prefix plus one dimension per
        # cluster present in the symbol pool.
        assert model.dim > DIM
        assert model.vectors.shape == (len(SYMBOLS), model.dim)

    def test_levenshtein_histograms_per_symbol(self):
        # Without clustering every symbol is its own histogram group.
        model = _model(LevenshteinCost())
        assert model.dim == DIM + len(SYMBOLS)

    def test_empty_string_embeds_to_zero(self):
        model = _model()
        assert not model.encode(()).any()

    def test_unknown_symbol_raises(self):
        model = _model()
        with pytest.raises(KeyError):
            model.encode(("q-not-a-phoneme",))

    def test_encode_many_matches_scalar_encode(self):
        rng = random.Random(SEED)
        model = _model()
        strings = _strings(rng, 40) + [()]
        codes = np.concatenate(
            [model.encoded.encode(s) for s in strings]
        ).astype(np.int64)
        offsets = np.zeros(len(strings) + 1, dtype=np.int64)
        np.cumsum([len(s) for s in strings], out=offsets[1:])
        batch = model.encode_many(codes, offsets)
        for row, string in zip(batch, strings):
            assert np.array_equal(row, model.encode(string)), string

    def test_lower_bound_constant_default_model(self):
        # The enumerated constant for the paper's default clustered
        # costs over this 30-symbol pool; a change means the embedding
        # geometry or the cost model moved, and the lossless admission
        # radius moves with it.
        assert _model().lower_bound_constant() == pytest.approx(4.2)

    def test_lower_bound_constant_cached_and_positive(self):
        model = _model(LevenshteinCost())
        c = model.lower_bound_constant()
        assert c >= 1.0
        assert model.lower_bound_constant() == c

    def test_zero_cost_symbols_collapse(self):
        # intra_cluster_cost=0 reproduces Soundex: symbols sharing a
        # cluster substitute for free, so they must share one embedding
        # (a free edit moves the embedding by exactly zero) and the
        # constant must still be finite.
        model = _model(ClusteredCost(0.0))
        costs = ClusteredCost(0.0)
        free_pair = None
        for a in SYMBOLS:
            for b in SYMBOLS:
                if a != b and costs.substitute(a, b) == 0.0:
                    free_pair = (a, b)
                    break
            if free_pair:
                break
        assert free_pair is not None
        va = model.encode((free_pair[0],))
        vb = model.encode((free_pair[1],))
        assert np.array_equal(va, vb)
        assert np.isfinite(model.lower_bound_constant())


class TestQuantization:
    def test_quantize_saturates_to_int8(self):
        big = np.array([[1e6, -1e6, 0.0]])
        q = quantize(big)
        assert q.dtype == np.int8
        assert q.tolist() == [[127, -127, 0]]

    def test_quantized_radius_accepts_arrays(self):
        radii = np.array([0.5, 1.0, 2.0])
        got = quantized_radius(radii, 36)
        assert np.array_equal(got, QUANT_SCALE * radii + 36)


class TestQuantizedMatrixIndex:
    @pytest.fixture()
    def setup(self):
        rng = random.Random(SEED + 1)
        model = _model()
        strings = _strings(rng, 80)
        vectors = np.stack([model.encode(s) for s in strings])
        query = model.encode(rng.choice(strings))
        return model, vectors, query

    def test_search_is_superset_of_float_radius(self, setup):
        _, vectors, query = setup
        index = QuantizedMatrixIndex.from_vectors(vectors)
        for radius in (0.0, 0.5, 1.5, 4.0):
            got = set(index.search(query, radius).tolist())
            exact = {
                i
                for i, vec in enumerate(vectors)
                if np.abs(vec - query).sum() <= radius
            }
            assert exact <= got, radius

    def test_append_delete_and_len(self, setup):
        _, vectors, query = setup
        index = QuantizedMatrixIndex.from_vectors(vectors)
        assert len(index) == len(vectors)
        position = index.append(query)
        assert len(index) == len(vectors) + 1
        assert position in index.search(query, 0.0).tolist()
        index.delete(position)
        index.delete(position)  # idempotent
        assert len(index) == len(vectors)
        assert position not in index.search(query, 0.0).tolist()

    def test_state_round_trip(self, setup):
        _, vectors, query = setup
        index = QuantizedMatrixIndex.from_vectors(vectors)
        index.delete(3)
        restored = QuantizedMatrixIndex.from_state(index.state())
        assert restored.scale == index.scale
        for radius in (0.5, 2.0):
            assert np.array_equal(
                restored.search(query, radius),
                index.search(query, radius),
            )

    def test_block_boundary_identical(self, setup, monkeypatch):
        from repro.matching import embed as embed_mod

        _, vectors, query = setup
        index = QuantizedMatrixIndex.from_vectors(vectors)
        unblocked = index.search(query, 2.0)
        monkeypatch.setattr(embed_mod, "EMBED_BLOCK", 7)
        assert np.array_equal(index.search(query, 2.0), unblocked)

    def test_search_cancels_on_deadline(self, setup):
        _, vectors, query = setup
        index = QuantizedMatrixIndex.from_vectors(vectors)
        with deadline.deadline_scope(1e-4):
            time.sleep(0.01)
            with pytest.raises(DeadlineExceededError):
                index.search(query, 2.0)


class TestVPTree:
    @pytest.fixture()
    def setup(self):
        rng = random.Random(SEED + 2)
        model = _model()
        strings = _strings(rng, 120)
        vectors = np.stack([model.encode(s) for s in strings])
        query = model.encode(rng.choice(strings))
        return vectors, query

    def test_search_equals_float_brute_force(self, setup):
        vectors, query = setup
        tree = VPTree(vectors)
        for radius in (0.0, 0.5, 1.5, 4.0):
            got = sorted(tree.search(query, radius).tolist())
            exact = [
                i
                for i, vec in enumerate(vectors)
                if np.abs(vec - query).sum() <= radius
            ]
            assert got == exact, radius

    def test_pruning_does_less_work_than_scan(self, setup):
        vectors, query = setup
        tree = VPTree(vectors)
        tree.search(query, 0.25)
        assert tree.last_distance_calls < len(vectors)

    def test_add_delete_keep_brute_force_parity(self, setup):
        vectors, query = setup
        tree = VPTree(vectors)
        live = {i: vectors[i] for i in range(len(vectors))}
        rng = random.Random(SEED + 3)
        # Enough churn to cross the overflow rebuild threshold.
        for step in range(60):
            if rng.random() < 0.6 or not live:
                position = len(vectors) + step
                vector = vectors[rng.randrange(len(vectors))] * 1.01
                tree.add(position, vector)
                live[position] = vector
            else:
                position = rng.choice(sorted(live))
                tree.delete(position)
                del live[position]
        got = sorted(tree.search(query, 2.0).tolist())
        exact = sorted(
            pos
            for pos, vec in live.items()
            if np.abs(vec - query).sum() <= 2.0
        )
        assert got == exact

    def test_matrix_admits_superset_of_vptree(self, setup):
        # Quantization slack only ever widens admission: the int8 scan
        # must admit every position the float tree admits.
        vectors, query = setup
        tree = VPTree(vectors)
        index = QuantizedMatrixIndex.from_vectors(vectors)
        for radius in (0.5, 1.5, 3.0):
            float_hits = set(tree.search(query, radius).tolist())
            scan_hits = set(index.search(query, radius).tolist())
            assert float_hits <= scan_hits, radius


class TestLowerBoundGuards:
    def test_nonpositive_indel_cost_rejected(self):
        class FreeIndel(ClusteredCost):
            def insert(self, symbol):
                return 0.0

            def delete(self, symbol):
                return 0.0

            def min_indel_cost(self):
                return 0.0

        model = EmbeddingModel(EncodedCosts(FreeIndel(0.25), SYMBOLS))
        with pytest.raises(MatchConfigError):
            model.lower_bound_constant()
