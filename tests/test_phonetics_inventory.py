"""Tests for the IPA phoneme inventory."""

import pytest

from repro.errors import PhonemeError
from repro.phonetics.inventory import (
    INVENTORY,
    Backness,
    Height,
    Manner,
    Phoneme,
    PhonemeClass,
    Place,
    base_symbol,
    get_phoneme,
    is_known_symbol,
)


class TestInventoryContents:
    def test_core_consonants_present(self):
        for sym in ["p", "b", "t", "d", "k", "g", "m", "n", "s", "z",
                    "ʃ", "ʒ", "tʃ", "dʒ", "r", "l", "j", "w", "h"]:
            assert is_known_symbol(sym)

    def test_indic_series_present(self):
        for sym in ["ʈ", "ɖ", "ɳ", "t̪", "d̪", "ʋ", "ɽ", "ɦ", "ʂ"]:
            assert is_known_symbol(sym)

    def test_aspirated_stops_present(self):
        for sym in ["kʰ", "gʱ", "tʃʰ", "dʒʱ", "t̪ʰ", "d̪ʱ", "bʱ", "pʰ"]:
            assert is_known_symbol(sym)
            assert get_phoneme(sym).aspirated

    def test_vowels_have_long_and_nasal_variants(self):
        for sym in ["a", "i", "u", "e", "o", "ɛ", "ɔ"]:
            assert is_known_symbol(sym + "ː")
            assert is_known_symbol(sym + "̃")
            assert get_phoneme(sym + "ː").long
            assert get_phoneme(sym + "̃").nasal

    def test_front_rounded_vowels_for_french(self):
        assert get_phoneme("y").rounded
        assert get_phoneme("ø").rounded
        assert get_phoneme("œ").rounded

    def test_inventory_is_reasonably_large(self):
        # consonants + aspirates + vowels x {plain, long, nasal, ...}
        assert len(INVENTORY) > 120

    def test_aspirated_voiced_stops_use_breathy_mark(self):
        assert "bʱ" in INVENTORY
        assert "bʰ" not in INVENTORY
        assert "pʰ" in INVENTORY
        assert "pʱ" not in INVENTORY


class TestPhonemeFeatures:
    def test_consonants_have_place_and_manner(self):
        for ph in INVENTORY.values():
            if ph.is_consonant:
                assert ph.place is not None
                assert ph.manner is not None

    def test_vowels_have_height_and_backness(self):
        for ph in INVENTORY.values():
            if ph.is_vowel:
                assert ph.height is not None
                assert ph.backness is not None

    def test_nasals_flagged_nasal(self):
        for sym in ["m", "n", "ɳ", "ɲ", "ŋ"]:
            assert get_phoneme(sym).nasal

    def test_voicing(self):
        assert not get_phoneme("p").voiced
        assert get_phoneme("b").voiced
        assert not get_phoneme("s").voiced
        assert get_phoneme("z").voiced

    def test_phoneme_is_frozen(self):
        with pytest.raises(AttributeError):
            get_phoneme("p").voiced = True  # type: ignore[misc]

    def test_invalid_consonant_definition_rejected(self):
        with pytest.raises(PhonemeError):
            Phoneme(symbol="x1", klass=PhonemeClass.CONSONANT)

    def test_invalid_vowel_definition_rejected(self):
        with pytest.raises(PhonemeError):
            Phoneme(symbol="x2", klass=PhonemeClass.VOWEL)


class TestLookup:
    def test_get_phoneme_known(self):
        ph = get_phoneme("tʃ")
        assert ph.manner is Manner.AFFRICATE
        assert ph.place is Place.POSTALVEOLAR

    def test_get_phoneme_unknown_raises(self):
        with pytest.raises(PhonemeError):
            get_phoneme("Q")

    def test_base_symbol_strips_modifiers(self):
        assert base_symbol("aː") == "a"
        assert base_symbol("kʰ") == "k"
        assert base_symbol("ã") in ("a",)  # NFC form of a + tilde
        assert base_symbol("p") == "p"

    def test_vowel_ordering_enums(self):
        assert Height.CLOSE.value < Height.OPEN.value
        assert Backness.FRONT.value < Backness.BACK.value
