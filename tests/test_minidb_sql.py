"""Tests for the SQL parser: statements, expressions and the
LexEQUAL grammar extension."""

import pytest

from repro.errors import SQLSyntaxError
from repro.minidb.expr import (
    Aggregate,
    Between,
    BinaryOp,
    BoolOp,
    ColumnRef,
    FuncCall,
    InList,
    IsNull,
    LexEqual,
    Literal,
    Param,
    UnaryOp,
)
from repro.minidb.sql import (
    CreateIndexStmt,
    CreateTableStmt,
    DropIndexStmt,
    DropTableStmt,
    InsertStmt,
    SelectStmt,
    parse,
)
from repro.minidb.values import SqlType


class TestSelectParsing:
    def test_simple_select(self):
        stmt = parse("SELECT a, b FROM t")
        assert isinstance(stmt, SelectStmt)
        assert len(stmt.items) == 2
        assert stmt.tables[0].name == "t"

    def test_star(self):
        stmt = parse("SELECT * FROM t")
        assert stmt.items[0].expr is None

    def test_qualified_star(self):
        stmt = parse("SELECT b1.* FROM books b1")
        assert stmt.items[0].star_table == "b1"

    def test_aliases(self):
        stmt = parse("SELECT a AS x, b y FROM t AS u")
        assert stmt.items[0].alias == "x"
        assert stmt.items[1].alias == "y"
        assert stmt.tables[0].alias == "u"

    def test_where_and_or_precedence(self):
        stmt = parse("SELECT a FROM t WHERE x = 1 OR y = 2 AND z = 3")
        assert isinstance(stmt.where, BoolOp)
        assert stmt.where.op == "OR"
        assert isinstance(stmt.where.terms[1], BoolOp)
        assert stmt.where.terms[1].op == "AND"

    def test_group_by_having(self):
        stmt = parse(
            "SELECT lang, COUNT(*) FROM t GROUP BY lang HAVING COUNT(*) > 2"
        )
        assert len(stmt.group_by) == 1
        assert isinstance(stmt.having, BinaryOp)

    def test_order_by_and_limit(self):
        stmt = parse("SELECT a FROM t ORDER BY a DESC, b LIMIT 10")
        assert stmt.order_by[0][1] is True
        assert stmt.order_by[1][1] is False
        assert stmt.limit == 10

    def test_distinct(self):
        assert parse("SELECT DISTINCT a FROM t").distinct

    def test_multiple_tables(self):
        stmt = parse("SELECT a FROM t1 x, t2 y WHERE x.id = y.id")
        assert [t.alias for t in stmt.tables] == ["x", "y"]


class TestExpressionParsing:
    def _where(self, text: str):
        return parse(f"SELECT a FROM t WHERE {text}").where

    def test_comparisons(self):
        for op in ["=", "<>", "<", "<=", ">", ">="]:
            expr = self._where(f"a {op} 1")
            assert isinstance(expr, BinaryOp)
            assert expr.op == op

    def test_arithmetic_precedence(self):
        expr = self._where("a = 1 + 2 * 3")
        assert isinstance(expr.right, BinaryOp)
        assert expr.right.op == "+"
        assert isinstance(expr.right.right, BinaryOp)
        assert expr.right.right.op == "*"

    def test_parens(self):
        expr = self._where("a = (1 + 2) * 3")
        assert expr.right.op == "*"

    def test_between(self):
        expr = self._where("a BETWEEN 1 AND 5")
        assert isinstance(expr, Between)

    def test_not_between(self):
        expr = self._where("a NOT BETWEEN 1 AND 5")
        assert isinstance(expr, Between)
        assert expr.negated

    def test_in_list(self):
        expr = self._where("a IN (1, 2, 3)")
        assert isinstance(expr, InList)
        assert len(expr.items) == 3

    def test_is_null(self):
        assert isinstance(self._where("a IS NULL"), IsNull)
        expr = self._where("a IS NOT NULL")
        assert isinstance(expr, IsNull) and expr.negated

    def test_string_literal_with_escape(self):
        expr = self._where("a = 'O''Brien'")
        assert expr.right == Literal("O'Brien")

    def test_unicode_string_literal(self):
        expr = self._where("a = 'नेहरु'")
        assert expr.right == Literal("नेहरु")

    def test_params(self):
        expr = self._where("a = :name")
        assert expr.right == Param("name")

    def test_function_call(self):
        expr = self._where("length(a) > 3")
        assert isinstance(expr.left, FuncCall)
        assert expr.left.name == "length"

    def test_aggregates(self):
        stmt = parse("SELECT COUNT(*), SUM(x), AVG(y) FROM t")
        assert stmt.items[0].expr == Aggregate("COUNT", None)
        assert stmt.items[1].expr == Aggregate("SUM", ColumnRef(None, "x"))

    def test_not_operator(self):
        expr = self._where("NOT a = 1")
        assert isinstance(expr, UnaryOp)
        assert expr.op == "NOT"

    def test_unary_minus(self):
        expr = self._where("a = -1")
        assert isinstance(expr.right, UnaryOp)

    def test_booleans_and_null(self):
        assert self._where("a = true").right == Literal(True)
        assert self._where("a = null").right == Literal(None)

    def test_concat(self):
        expr = self._where("a || b = 'ab'")
        assert expr.left.op == "||"


class TestLexEqualGrammar:
    def test_paper_figure_3_query(self):
        stmt = parse(
            "select Author, Title from Books "
            "where Author LexEQUAL 'Nehru' Threshold 0.25 "
            "inlanguages { English, Hindi, Tamil, Greek }"
        )
        expr = stmt.where
        assert isinstance(expr, LexEqual)
        assert expr.threshold == Literal(0.25)
        assert expr.languages == ("english", "hindi", "tamil", "greek")

    def test_paper_figure_5_join_query(self):
        stmt = parse(
            "select Author from Books B1, Books B2 "
            "where B1.Author LexEQUAL B2.Author Threshold 0.25 "
            "and B1.Language <> B2.Language"
        )
        assert isinstance(stmt.where, BoolOp)
        lex = stmt.where.terms[0]
        assert isinstance(lex, LexEqual)
        assert lex.left == ColumnRef("B1", "Author")

    def test_wildcard_languages(self):
        stmt = parse("SELECT a FROM t WHERE a LEXEQUAL 'x' INLANGUAGES *")
        assert stmt.where.languages == ()

    def test_threshold_optional(self):
        stmt = parse("SELECT a FROM t WHERE a LEXEQUAL 'x'")
        assert stmt.where.threshold == Literal(0.0)

    def test_threshold_param(self):
        stmt = parse("SELECT a FROM t WHERE a LEXEQUAL 'x' THRESHOLD :e")
        assert stmt.where.threshold == Param("e")


class TestDdlDml:
    def test_create_table(self):
        stmt = parse(
            "CREATE TABLE books (author TEXT NOT NULL, price REAL, n INTEGER)"
        )
        assert isinstance(stmt, CreateTableStmt)
        assert stmt.columns[0] == ("author", SqlType.TEXT, False)
        assert stmt.columns[1] == ("price", SqlType.REAL, True)

    def test_create_index(self):
        stmt = parse("CREATE INDEX idx ON books (author)")
        assert isinstance(stmt, CreateIndexStmt)
        assert (stmt.name, stmt.table, stmt.column) == (
            "idx",
            "books",
            "author",
        )

    def test_drop(self):
        assert isinstance(parse("DROP TABLE t"), DropTableStmt)
        assert isinstance(parse("DROP INDEX i"), DropIndexStmt)

    def test_insert_multi_row(self):
        stmt = parse("INSERT INTO t VALUES (1, 'a'), (2, 'b')")
        assert isinstance(stmt, InsertStmt)
        assert len(stmt.rows) == 2


class TestSyntaxErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "SELECT",
            "SELECT a",
            "SELECT a FROM",
            "SELECT a FROM t WHERE",
            "FOO BAR",
            "SELECT a FROM t LIMIT 1.5",
            "SELECT a FROM t; garbage",
            "CREATE VIEW v",
            "SELECT a FROM t WHERE a = 'unterminated",
        ],
    )
    def test_rejected(self, bad):
        with pytest.raises(SQLSyntaxError):
            parse(bad)

    def test_error_carries_position(self):
        try:
            parse("SELECT a FROM t WHERE ^")
        except SQLSyntaxError as exc:
            assert exc.position is not None
        else:  # pragma: no cover
            pytest.fail("expected SQLSyntaxError")
