"""Hypothesis property tests over the core data structures and invariants.

These encode the guarantees DESIGN.md calls out:

* the DP edit distance is a (pseudo)metric under symmetric costs, and
  the banded variant agrees with it inside the budget;
* the batch (numpy) DP is bit-identical to the scalar DP;
* the q-gram filters never reject a pair the UDF would accept
  (no-false-dismissal soundness), including in cluster space with
  fractional costs;
* the grouped phoneme key is invariant under intra-cluster substitution;
* TTP converters are deterministic and total over their scripts.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.core.config import MatchConfig
from repro.matching.costs import ClusteredCost, LevenshteinCost
from repro.matching.editdist import edit_distance, edit_distance_within
from repro.matching.qgrams import passes_filters
from repro.phonetics.clusters import default_clustering
from repro.phonetics.folding import fold_phonemes
from repro.phonetics.keys import grouped_key

# A representative symbol pool: stops, nasals, liquids, laryngeals, vowels.
SYMBOLS = [
    "p", "b", "t", "d", "ʈ", "k", "g", "tʃ", "dʒ", "s", "z", "ʃ",
    "m", "n", "ŋ", "r", "l", "j", "w", "v", "h", "f",
    "a", "e", "i", "o", "u", "ə", "ɛ", "ɔ",
]

phoneme_strings = st.lists(
    st.sampled_from(SYMBOLS), min_size=0, max_size=10
).map(tuple)

cost_models = st.sampled_from(
    [
        LevenshteinCost(),
        ClusteredCost(0.25),
        ClusteredCost(0.5, weak_indel_cost=1.0, vowel_cross_cost=1.0),
        ClusteredCost(0.0),
        ClusteredCost(1.0, weak_indel_cost=0.5),
    ]
)


class TestEditDistanceMetric:
    @settings(max_examples=150, deadline=None)
    @given(a=phoneme_strings, b=phoneme_strings, costs=cost_models)
    def test_symmetry(self, a, b, costs):
        assert edit_distance(a, b, costs) == pytest.approx(
            edit_distance(b, a, costs)
        )

    @settings(max_examples=100, deadline=None)
    @given(a=phoneme_strings, costs=cost_models)
    def test_identity(self, a, costs):
        assert edit_distance(a, a, costs) == 0.0

    @settings(max_examples=80, deadline=None)
    @given(
        a=phoneme_strings,
        b=phoneme_strings,
        c=phoneme_strings,
        costs=cost_models,
    )
    def test_triangle_inequality(self, a, b, c, costs):
        ab = edit_distance(a, b, costs)
        bc = edit_distance(b, c, costs)
        ac = edit_distance(a, c, costs)
        assert ac <= ab + bc + 1e-9

    @settings(max_examples=100, deadline=None)
    @given(a=phoneme_strings, b=phoneme_strings, costs=cost_models)
    def test_nonnegative_and_bounded(self, a, b, costs):
        d = edit_distance(a, b, costs)
        assert 0.0 <= d <= max(len(a), len(b))

    @settings(max_examples=150, deadline=None)
    @given(
        a=phoneme_strings,
        b=phoneme_strings,
        costs=cost_models,
        budget=st.floats(min_value=0.0, max_value=8.0, allow_nan=False),
    )
    def test_banded_agrees_with_full(self, a, b, costs, budget):
        full = edit_distance(a, b, costs)
        if abs(full - budget) < 1e-9:
            return  # knife-edge: inclusion depends on float rounding
        banded = edit_distance_within(a, b, budget, costs)
        if full < budget:
            assert banded is not None
            assert banded == pytest.approx(full)
        else:
            assert banded is None


class TestWithinCutoffSemantics:
    """The contract of ``edit_distance_within(a, b, cutoff)``.

    It returns a value iff the true distance is within the cutoff, the
    value is the true distance, acceptance is monotone in the cutoff,
    and the whole function is symmetric under symmetric cost models.
    (Arithmetic is exact — all shipped costs are binary fractions — so
    the properties hold with equality, no epsilon.)
    """

    @settings(max_examples=150, deadline=None)
    @given(
        a=phoneme_strings,
        b=phoneme_strings,
        costs=cost_models,
        cutoff=st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
    )
    def test_value_iff_true_distance_within(self, a, b, costs, cutoff):
        full = edit_distance(a, b, costs)
        got = edit_distance_within(a, b, cutoff, costs)
        if full <= cutoff:
            assert got == full
        else:
            assert got is None

    @settings(max_examples=120, deadline=None)
    @given(
        a=phoneme_strings,
        b=phoneme_strings,
        costs=cost_models,
        lo=st.floats(min_value=0.0, max_value=8.0, allow_nan=False),
        extra=st.floats(min_value=0.0, max_value=4.0, allow_nan=False),
    )
    def test_monotone_in_cutoff(self, a, b, costs, lo, extra):
        """Accepted at a cutoff => accepted (same value) at any larger."""
        at_lo = edit_distance_within(a, b, lo, costs)
        at_hi = edit_distance_within(a, b, lo + extra, costs)
        if at_lo is not None:
            assert at_hi == at_lo
        # And the contrapositive: rejected at the larger cutoff =>
        # rejected at the smaller.
        if at_hi is None:
            assert at_lo is None

    @settings(max_examples=120, deadline=None)
    @given(
        a=phoneme_strings,
        b=phoneme_strings,
        costs=cost_models,
        cutoff=st.floats(min_value=0.0, max_value=8.0, allow_nan=False),
    )
    def test_symmetric_for_symmetric_models(self, a, b, costs, cutoff):
        # Every shipped model is symmetric (asserted by the metric-axiom
        # suite), so the thresholded kernel must be too.
        assert edit_distance_within(
            a, b, cutoff, costs
        ) == edit_distance_within(b, a, cutoff, costs)

    @settings(max_examples=80, deadline=None)
    @given(a=phoneme_strings, costs=cost_models)
    def test_identity_accepted_at_zero(self, a, costs):
        assert edit_distance_within(a, a, 0.0, costs) == 0.0


class TestBatchAgreesWithScalar:
    @settings(max_examples=60, deadline=None)
    @given(
        query=phoneme_strings,
        candidates=st.lists(phoneme_strings, min_size=1, max_size=6),
        costs=cost_models,
    )
    def test_batch_identical(self, query, candidates, costs):
        import numpy as np

        from repro.matching.batch import EncodedCosts, batch_edit_distances

        encoded = EncodedCosts(costs, SYMBOLS)
        got = batch_edit_distances(query, candidates, encoded)
        expected = [edit_distance(query, c, costs) for c in candidates]
        assert np.allclose(got, expected)

    @settings(max_examples=60, deadline=None)
    @given(
        query=phoneme_strings,
        candidates=st.lists(phoneme_strings, min_size=1, max_size=6),
        costs=cost_models,
        threshold=st.sampled_from([0.0, 0.25, 0.35, 0.5, 1.0]),
    )
    def test_batch_within_identical(
        self, query, candidates, costs, threshold
    ):
        import numpy as np

        from repro.matching.batch import (
            EncodedCosts,
            batch_edit_distances_within,
        )

        encoded = EncodedCosts(costs, SYMBOLS)
        budgets = np.array(
            [threshold * min(len(query), len(c)) for c in candidates]
        )
        got = batch_edit_distances_within(
            query, candidates, encoded, budgets
        )
        for value, cand, budget in zip(got, candidates, budgets):
            full = edit_distance(query, cand, costs)
            if full <= budget:
                assert value == full
            else:
                assert value == np.inf


class TestQGramSoundness:
    @settings(max_examples=120, deadline=None)
    @given(
        a=phoneme_strings,
        b=phoneme_strings,
        threshold=st.sampled_from([0.1, 0.25, 0.33, 0.5]),
        intra=st.sampled_from([0.0, 0.25, 0.5, 1.0]),
        q=st.sampled_from([2, 3]),
    )
    def test_cluster_domain_filters_never_dismiss(
        self, a, b, threshold, intra, q
    ):
        """If LexEQUAL accepts (a, b), the cluster-space q-gram filters
        must pass — the invariant behind QGramStrategy == NaiveUdf."""
        config = MatchConfig(
            threshold=threshold, intra_cluster_cost=intra, q=q
        )
        costs = config.cost_model()
        budget = config.budget(len(a), len(b))
        if edit_distance(a, b, costs) > budget:
            return  # not a match; filters may do anything
        clustering = config.clustering
        mapped_a = tuple(str(c) for c in clustering.map_string(a))
        mapped_b = tuple(str(c) for c in clustering.map_string(b))
        k = config.max_operations(min(len(a), len(b)))
        assert passes_filters(mapped_a, mapped_b, k, q)

    @settings(max_examples=120, deadline=None)
    @given(
        a=phoneme_strings,
        b=phoneme_strings,
        threshold=st.sampled_from([0.1, 0.25, 0.33, 0.5]),
        q=st.sampled_from([2, 3]),
    )
    def test_phoneme_domain_filters_never_dismiss(self, a, b, threshold, q):
        config = MatchConfig(
            threshold=threshold,
            intra_cluster_cost=0.25,
            q=q,
            qgram_domain="phoneme",
        )
        costs = config.cost_model()
        budget = config.budget(len(a), len(b))
        if edit_distance(a, b, costs) > budget:
            return
        k = config.max_operations(min(len(a), len(b)))
        assert passes_filters(a, b, k, q)


class TestGroupedKeyInvariance:
    @settings(max_examples=120, deadline=None)
    @given(
        phonemes=st.lists(
            st.sampled_from(SYMBOLS), min_size=1, max_size=8
        ).map(tuple),
        position=st.integers(min_value=0, max_value=7),
        data=st.data(),
    )
    def test_intra_cluster_swap_preserves_key(
        self, phonemes, position, data
    ):
        from repro.phonetics.keys import _SKELETON_SKIP

        clustering = default_clustering()
        position = position % len(phonemes)
        original = phonemes[position]
        members = clustering.members(clustering.cluster_id(original))
        replacement = data.draw(st.sampled_from(list(members)))
        swapped = (
            phonemes[:position] + (replacement,) + phonemes[position + 1:]
        )
        assert grouped_key(phonemes, clustering, "full") == grouped_key(
            swapped, clustering, "full"
        )
        # The skeleton key also skips laryngeals, so its invariance only
        # covers swaps that keep skeleton membership (e.g. k <-> ʔ share
        # a cluster but only k is in the skeleton).
        if (original in _SKELETON_SKIP) == (replacement in _SKELETON_SKIP):
            assert grouped_key(
                phonemes, clustering, "skeleton"
            ) == grouped_key(swapped, clustering, "skeleton")

    @settings(max_examples=100, deadline=None)
    @given(phonemes=phoneme_strings)
    def test_key_deterministic_and_foldable(self, phonemes):
        assert grouped_key(phonemes) == grouped_key(phonemes)
        folded = fold_phonemes(phonemes)
        assert grouped_key(folded) == grouped_key(fold_phonemes(folded))


class TestEmbeddingPrefilterContract:
    """The articulatory-embedding prefilter's admission guarantees.

    DESIGN.md §12: the embedding distance lower-bounds the clustered
    edit distance (``|phi(s) - phi(t)|_1 <= c * d``) for the model's
    enumerated constant ``c``; quantization only ever *widens* the
    admitted set at the scaled radius (so the int8 fast path cannot
    lose a match the float path keeps); and index maintenance is
    reversible — insert followed by delete leaves search results
    exactly as they were.
    """

    @settings(max_examples=100, deadline=None)
    @given(a=phoneme_strings, b=phoneme_strings, costs=cost_models)
    def test_embedding_lower_bounds_edit_distance(self, a, b, costs):
        import numpy as np

        from repro.matching.batch import EncodedCosts
        from repro.matching.embed import EmbeddingModel

        model = EmbeddingModel(EncodedCosts(costs, SYMBOLS))
        emb = float(np.abs(model.encode(a) - model.encode(b)).sum())
        full = edit_distance(a, b, costs)
        c = model.lower_bound_constant()
        assert emb <= c * full + 1e-9, (a, b, emb, full, c)

    @settings(max_examples=100, deadline=None)
    @given(
        a=phoneme_strings,
        b=phoneme_strings,
        costs=cost_models,
        radius=st.floats(min_value=0.0, max_value=16.0, allow_nan=False),
    )
    def test_quantization_only_widens_admission(
        self, a, b, costs, radius
    ):
        """Admitted in float space => admitted in quantized space.

        Rounding moves each int8 component by at most 1 and saturation
        only shrinks differences, so the quantized distance stays
        within ``scale * float_distance + dim`` — exactly the slack
        ``quantized_radius`` grants the admission limit.
        """
        import numpy as np

        from repro.matching.batch import EncodedCosts
        from repro.matching.embed import (
            EmbeddingModel,
            quantize,
            quantized_radius,
        )

        model = EmbeddingModel(EncodedCosts(costs, SYMBOLS))
        x, y = model.encode(a), model.encode(b)
        if float(np.abs(x - y).sum()) > radius:
            return  # not admitted in float space; no promise made
        qx = quantize(x[None, :]).astype(np.int32)[0]
        qy = quantize(y[None, :]).astype(np.int32)[0]
        qdist = int(np.abs(qx - qy).sum())
        assert qdist <= quantized_radius(radius, model.dim)

    @settings(max_examples=40, deadline=None)
    @given(
        strings=st.lists(phoneme_strings, min_size=1, max_size=12),
        extra=phoneme_strings,
        query=phoneme_strings,
        radius=st.floats(min_value=0.0, max_value=12.0, allow_nan=False),
        kind=st.sampled_from(["matrix", "vptree"]),
    )
    def test_insert_then_delete_restores_search(
        self, strings, extra, query, radius, kind
    ):
        import numpy as np

        from repro.matching.batch import EncodedCosts
        from repro.matching.embed import (
            EmbeddingModel,
            QuantizedMatrixIndex,
            VPTree,
        )

        model = EmbeddingModel(EncodedCosts(ClusteredCost(0.25), SYMBOLS))
        vectors = np.stack([model.encode(s) for s in strings])
        qvec = model.encode(query)
        if kind == "matrix":
            index = QuantizedMatrixIndex.from_vectors(vectors)
            before = sorted(index.search(qvec, radius).tolist())
            position = index.append(model.encode(extra))
            index.delete(position)
        else:
            index = VPTree(vectors)
            before = sorted(index.search(qvec, radius).tolist())
            position = len(strings)
            index.add(position, model.encode(extra))
            index.delete(position)
        after = sorted(index.search(qvec, radius).tolist())
        assert after == before, (kind, before, after)


class TestConverterTotality:
    @settings(max_examples=80, deadline=None)
    @given(
        word=st.text(
            alphabet=st.characters(min_codepoint=97, max_codepoint=122),
            min_size=1,
            max_size=12,
        )
    )
    def test_english_total_and_deterministic(self, word):
        from repro.ttp.english import EnglishConverter

        converter = EnglishConverter()
        first = converter.to_phonemes(word)
        assert first == converter.to_phonemes(word)

    @settings(max_examples=80, deadline=None)
    @given(
        word=st.text(
            alphabet=st.characters(min_codepoint=97, max_codepoint=122),
            min_size=1,
            max_size=10,
        )
    )
    def test_romanization_reader_total(self, word):
        from repro.data.transliterate import (
            romanization_to_indic_phonemes,
            to_devanagari,
            to_tamil,
        )
        from repro.ttp.hindi import HindiConverter
        from repro.ttp.tamil import TamilConverter

        intent = romanization_to_indic_phonemes(word)
        # Everything the reader produces must be spellable and readable.
        HindiConverter().to_phonemes(to_devanagari(intent))
        TamilConverter().to_phonemes(to_tamil(intent))
