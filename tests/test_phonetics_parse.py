"""Tests for IPA string tokenization."""

import pytest

from repro.errors import PhonemeError
from repro.phonetics.parse import (
    format_phonemes,
    ipa_length,
    parse_ipa,
    validate_phoneme_string,
)


class TestBasicParsing:
    def test_simple_word(self):
        assert parse_ipa("nehru") == ("n", "e", "h", "r", "u")

    def test_affricates_are_single_phonemes(self):
        assert parse_ipa("tʃa") == ("tʃ", "a")
        assert parse_ipa("dʒa") == ("dʒ", "a")
        assert parse_ipa("tsa") == ("ts", "a")

    def test_aspiration_attaches(self):
        assert parse_ipa("kʰa") == ("kʰ", "a")
        assert parse_ipa("bʱa") == ("bʱ", "a")

    def test_long_vowels_attach(self):
        assert parse_ipa("naː") == ("n", "aː")

    def test_nasal_vowels_attach(self):
        phonemes = parse_ipa("bɔ̃")
        assert len(phonemes) == 2
        assert phonemes[1].endswith("̃")

    def test_dental_diacritic_kept_with_stop(self):
        assert parse_ipa("t̪a") == ("t̪", "a")
        assert parse_ipa("d̪ʱa") == ("d̪ʱ", "a")

    def test_empty_string(self):
        assert parse_ipa("") == ()

    def test_length_counts_phonemes_not_codepoints(self):
        # dʒəʋaːɦərlaːl: 10 phonemes, more code points
        text = "dʒəʋaːɦərlaːl"
        assert ipa_length(text) == 10
        assert len(text) > 10


class TestSuprasegmentals:
    def test_stress_marks_removed(self):
        assert parse_ipa("ˈnehru") == parse_ipa("nehru")
        assert parse_ipa("ˌne.hru") == parse_ipa("nehru")

    def test_whitespace_ignored(self):
        assert parse_ipa("ne hru") == parse_ipa("nehru")

    def test_script_g_alias(self):
        assert parse_ipa("ɡa") == ("g", "a")


class TestErrors:
    def test_unknown_symbol_raises(self):
        with pytest.raises(PhonemeError):
            parse_ipa("n3hru")

    def test_leading_modifier_raises(self):
        with pytest.raises(PhonemeError):
            parse_ipa("ːa")

    def test_validate_rejects_bad_symbol(self):
        with pytest.raises(PhonemeError):
            validate_phoneme_string(("n", "XX"))

    def test_validate_accepts_good_string(self):
        validate_phoneme_string(parse_ipa("nɛhɹu"))


class TestRoundTrip:
    def test_format_inverts_parse(self):
        for text in ["nɛhɹu", "dʒəʋaːɦərlaːl", "kʰaːn", "t̪ʰaːkʊr"]:
            assert format_phonemes(parse_ipa(text)) == text

    def test_consonant_gemination_via_length_mark(self):
        # A length mark on a consonant doubles it (pattern used by some
        # transcriptions); the parser must not crash.
        assert parse_ipa("akːa") == ("a", "k", "k", "a")
