"""Tests for MatchConfig and the Figure 8 LexEQUAL operator."""

import pytest

from repro.core.config import MatchConfig
from repro.core.operator import MatchOutcome, lex_equal, operand_language
from repro.errors import MatchConfigError
from repro.matching.costs import ClusteredCost, LevenshteinCost
from repro.minidb.values import LangText


class TestMatchConfig:
    def test_defaults_in_paper_knee(self):
        config = MatchConfig()
        assert 0.25 <= config.threshold <= 0.35
        assert 0.25 <= config.intra_cluster_cost <= 0.5

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"threshold": -0.1},
            {"threshold": 1.5},
            {"intra_cluster_cost": 2.0},
            {"weak_indel_cost": 0.0},
            {"vowel_cross_cost": 0.0},
            {"q": 0},
            {"qgram_domain": "nope"},
            {"key_mode": "nope"},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(MatchConfigError):
            MatchConfig(**kwargs)

    def test_cost_model_selection(self):
        flat = MatchConfig(
            intra_cluster_cost=1.0,
            weak_indel_cost=1.0,
            vowel_cross_cost=1.0,
        )
        assert isinstance(flat.cost_model(), LevenshteinCost)
        assert isinstance(MatchConfig().cost_model(), ClusteredCost)

    def test_with_methods(self):
        config = MatchConfig().with_threshold(0.4)
        assert config.threshold == 0.4
        config = config.with_intra_cluster_cost(0.75)
        assert config.intra_cluster_cost == 0.75
        assert config.threshold == 0.4  # preserved

    def test_budget(self):
        config = MatchConfig(threshold=0.25)
        assert config.budget(4, 8) == 1.0
        assert config.budget(8, 4) == 1.0

    def test_max_operations_classical(self):
        config = MatchConfig(
            threshold=0.25,
            intra_cluster_cost=1.0,
            weak_indel_cost=1.0,
            vowel_cross_cost=1.0,
        )
        assert config.max_operations(14) == 3  # floor(0.25 * 14)

    def test_max_operations_scaled_by_cheap_ops(self):
        config = MatchConfig(
            threshold=0.25, weak_indel_cost=0.5, vowel_cross_cost=0.5
        )
        assert config.max_operations(14) == 7

    def test_phoneme_domain_zero_cost_unsound(self):
        config = MatchConfig(
            intra_cluster_cost=0.0, qgram_domain="phoneme"
        )
        with pytest.raises(MatchConfigError):
            config.max_operations(10)


class TestLexEqualOperator:
    def test_figure_4_selection(self):
        assert lex_equal("Nehru", LangText("नेहरु", "hindi"), 0.25)
        assert lex_equal("Nehru", LangText("நேரு", "tamil"), 0.25)
        assert not lex_equal("Nehru", "Nero", 0.25)

    def test_outcome_is_enum(self):
        outcome = lex_equal("Nehru", "Nehru", 0.0)
        assert outcome is MatchOutcome.TRUE
        assert bool(outcome)
        assert not bool(MatchOutcome.FALSE)
        assert not bool(MatchOutcome.NORESOURCE)

    def test_zero_threshold_requires_identity(self):
        assert lex_equal("Nehru", "Nehru", 0.0)
        assert not lex_equal("Nehru", "Nehrus", 0.0)

    def test_noresource_for_unsupported_script(self):
        # Hebrew text: script not detected -> NORESOURCE
        outcome = lex_equal("Nehru", "נהרו", 0.5)
        assert outcome is MatchOutcome.NORESOURCE

    def test_noresource_for_unregistered_language(self):
        outcome = lex_equal("Nehru", LangText("xyz", "klingon"), 0.5)
        assert outcome is MatchOutcome.NORESOURCE

    def test_language_restriction(self):
        hindi = LangText("नेहरु", "hindi")
        assert lex_equal(
            "Nehru", hindi, 0.3, languages=("english", "hindi")
        )
        assert not lex_equal("Nehru", hindi, 0.3, languages=("english",))

    def test_wildcard_languages(self):
        assert lex_equal("Nehru", LangText("नेहरु", "hindi"), 0.3,
                         languages=())

    def test_symmetric(self):
        a, b = "Nehru", LangText("நேரு", "tamil")
        assert lex_equal(a, b, 0.3) == lex_equal(b, a, 0.3)

    def test_threshold_uses_config_default(self):
        config = MatchConfig(threshold=0.0)
        assert not lex_equal(
            "Nehru", LangText("नेहरु", "hindi"), config=config
        )

    def test_operand_language(self):
        assert operand_language("Nehru") == "english"
        assert operand_language(LangText("x", "Hindi")) == "hindi"
        assert operand_language("!!!") is None
