"""WAL unit tests: append/commit/replay, damage handling, failpoints."""

from __future__ import annotations

import os
import struct

import pytest

from repro import faults
from repro.errors import StorageError
from repro.storage.wal import COMMIT_OP, WalRecord, WriteAheadLog, replay


@pytest.fixture(autouse=True)
def _clean_faults():
    faults.reset()
    yield
    faults.reset()


def _wal_path(tmp_path) -> str:
    return str(tmp_path / "wal.log")


def test_append_commit_replay_round_trip(tmp_path):
    path = _wal_path(tmp_path)
    wal = WriteAheadLog(path)
    wal.append("insert", ("people", (1, "Nehru")))
    wal.append("insert", ("people", (2, "Nero")))
    wal.commit()
    wal.append("delete", ("people", 1))
    wal.commit()
    wal.close()

    info = replay(path)
    assert not info.damaged
    assert [[r.op for r in batch] for batch in info.batches] == [
        ["insert", "insert"],
        ["delete"],
    ]
    assert info.batches[0][0] == WalRecord(1, "insert", ("people", (1, "Nehru")))
    # LSNs are contiguous across records and commit markers.
    assert info.next_lsn == 6


def test_uncommitted_tail_is_dropped(tmp_path):
    path = _wal_path(tmp_path)
    wal = WriteAheadLog(path)
    wal.append("insert", ("t", (1,)))
    wal.commit()
    wal.append("insert", ("t", (2,)))  # no commit marker follows
    wal._file.flush()
    wal.close()

    info = replay(path)
    assert not info.damaged  # intact records, just uncommitted
    assert len(info.batches) == 1
    assert info.batches[0][0].args == ("t", (1,))
    # valid_bytes points just past the commit marker, before the tail.
    assert 0 < info.valid_bytes < os.path.getsize(path)


def test_torn_record_truncated_on_open(tmp_path):
    path = _wal_path(tmp_path)
    wal = WriteAheadLog(path)
    wal.append("insert", ("t", (1,)))
    wal.commit()
    wal.close()
    committed_size = os.path.getsize(path)
    with open(path, "ab") as fh:
        fh.write(struct.pack("<II", 4096, 0))  # header promising 4 KiB
        fh.write(b"\x00" * 7)  # ...followed by 7 bytes

    info = replay(path)
    assert info.damaged
    assert len(info.batches) == 1

    wal, opened = WriteAheadLog.open(path)
    wal.close()
    assert opened.damaged
    assert os.path.getsize(path) == committed_size  # tail gone


def test_crc_corruption_ends_scan_at_last_commit(tmp_path):
    path = _wal_path(tmp_path)
    wal = WriteAheadLog(path)
    wal.append("insert", ("t", (1,)))
    wal.commit()
    wal.append("insert", ("t", (2,)))
    wal.commit()
    wal.close()
    data = bytearray(open(path, "rb").read())
    data[-3] ^= 0xFF  # flip a byte inside the final commit marker
    open(path, "wb").write(bytes(data))

    info = replay(path)
    assert info.damaged
    # The second batch's commit marker is corrupt, so only batch one
    # counts as committed.
    assert len(info.batches) == 1


def test_open_missing_file_starts_fresh(tmp_path):
    wal, info = WriteAheadLog.open(_wal_path(tmp_path))
    assert info.batches == [] and info.next_lsn == 1 and not info.damaged
    wal.append("insert", ("t", (1,)))
    wal.commit()
    wal.close()


def test_commit_without_appends_is_a_noop(tmp_path):
    path = _wal_path(tmp_path)
    wal = WriteAheadLog(path)
    wal.commit()
    wal.close()
    assert os.path.getsize(path) == 0


def test_reset_truncates_after_checkpoint(tmp_path):
    path = _wal_path(tmp_path)
    wal = WriteAheadLog(path)
    wal.append("insert", ("t", (1,)))
    wal.commit()
    wal.reset()
    assert os.path.getsize(path) == 0
    # The log stays usable after a reset.
    wal.append("insert", ("t", (2,)))
    wal.commit()
    wal.close()
    info = replay(path)
    assert len(info.batches) == 1
    assert info.batches[0][0].args == ("t", (2,))


def test_torn_append_failpoint_poisons_log(tmp_path):
    path = _wal_path(tmp_path)
    wal = WriteAheadLog(path)
    wal.append("insert", ("t", (1,)))
    wal.commit()
    faults.configure("storage.wal.append", count=1)
    with pytest.raises(StorageError, match="torn"):
        wal.append("insert", ("t", (2,)))
    # Subsequent appends refuse: the process is presumed dead.
    with pytest.raises(StorageError, match="poisoned"):
        wal.append("insert", ("t", (3,)))
    wal.close()
    # Recovery truncates the half-record; the committed batch survives.
    wal, info = WriteAheadLog.open(path)
    wal.close()
    assert info.damaged
    assert len(info.batches) == 1


def test_fsync_failpoint_surfaces_io_error(tmp_path):
    wal = WriteAheadLog(_wal_path(tmp_path))
    wal.append("insert", ("t", (1,)))
    faults.configure("storage.wal.fsync", error="io", count=1)
    with pytest.raises(OSError):
        wal.commit()
    wal.close()


def test_commit_marker_op_name_reserved(tmp_path):
    # Nothing stops an op literally named "commit" from being appended,
    # but replay would treat it as a marker — the backend never does
    # this; assert the constant so a rename breaks loudly here.
    assert COMMIT_OP == "commit"
