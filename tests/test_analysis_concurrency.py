"""Tests for the LEX-C concurrency rule family (repro.analysis.concurrency).

Same two layers as test_analysis.py: seeded-violation fixture modules
for every rule (each rule is constructed with an explicit file list and,
where relevant, a fixture spec), plus repo-level assertions that the
shipped spec matches this checkout — including the regression fixture
reproducing the PR 7 checkpoint lock-order inversion that LEX-C001
exists to catch.
"""

from __future__ import annotations

import textwrap

from repro.analysis import AnalysisContext
from repro.analysis.concurrency import (
    AsyncBlocking,
    DeadlinePolls,
    ForkSignalSafety,
    LockOrder,
    ResourceLifecycle,
)
from repro.analysis.lockgraph import LockGraph
from repro.analysis.lockspec import DEFAULT_SPEC, LockOrderSpec


def write_module(root, name: str, source: str) -> str:
    path = root / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return name


def fixture_spec(**ranks: int) -> LockOrderSpec:
    """A spec over fixture locks only: no repo tables, no exclusions."""
    return LockOrderSpec(
        ranks=dict(ranks),
        class_attrs={},
        module_vars={},
        attr_aliases={},
        excluded_files={},
    )


# ------------------------------------------------------------- LEX-C001


class TestLockOrder:
    def test_direct_inversion_fires(self, tmp_path):
        mod = write_module(
            tmp_path,
            "fix.py",
            """
            from repro.locks import make_lock

            _a = make_lock("fix.alpha")
            _b = make_lock("fix.beta")

            def wrong():
                with _b:
                    with _a:
                        pass
            """,
        )
        spec = fixture_spec(**{"fix.alpha": 1, "fix.beta": 2})
        rule = LockOrder(files=[mod], spec=spec)
        findings = list(rule.run(AnalysisContext(tmp_path)))
        assert any(
            "lock order inversion" in f.message
            and "'fix.alpha' (rank 1)" in f.message
            and "'fix.beta' (rank 2)" in f.message
            for f in findings
        ), findings

    def test_sanctioned_order_is_clean(self, tmp_path):
        mod = write_module(
            tmp_path,
            "fix.py",
            """
            from repro.locks import make_lock

            _a = make_lock("fix.alpha")
            _b = make_lock("fix.beta")

            def right():
                with _a:
                    with _b:
                        pass
            """,
        )
        spec = fixture_spec(**{"fix.alpha": 1, "fix.beta": 2})
        rule = LockOrder(files=[mod], spec=spec)
        assert list(rule.run(AnalysisContext(tmp_path))) == []

    def test_interprocedural_inversion_fires(self, tmp_path):
        mod = write_module(
            tmp_path,
            "fix.py",
            """
            from repro.locks import make_lock

            _a = make_lock("fix.alpha")
            _b = make_lock("fix.beta")

            def outer():
                with _b:
                    helper()

            def helper():
                with _a:
                    pass
            """,
        )
        spec = fixture_spec(**{"fix.alpha": 1, "fix.beta": 2})
        rule = LockOrder(files=[mod], spec=spec)
        findings = list(rule.run(AnalysisContext(tmp_path)))
        assert any(
            "lock order inversion" in f.message
            and "outer -> helper" in f.message
            for f in findings
        ), findings

    def test_unranked_lock_fires(self, tmp_path):
        mod = write_module(
            tmp_path,
            "fix.py",
            """
            import threading

            _mystery_lock = threading.Lock()

            def grab():
                with _mystery_lock:
                    pass
            """,
        )
        rule = LockOrder(files=[mod], spec=fixture_spec())
        findings = list(rule.run(AnalysisContext(tmp_path)))
        assert any("has no rank" in f.message for f in findings), findings

    def test_factory_name_drift_fires(self, tmp_path):
        mod = write_module(
            tmp_path,
            "fix.py",
            """
            from repro.locks import make_lock

            class StatementCache:
                def __init__(self):
                    self._lock = make_lock("server.wrong")
            """,
        )
        rule = LockOrder(files=[mod], spec=DEFAULT_SPEC)
        findings = list(rule.run(AnalysisContext(tmp_path)))
        assert any(
            "disagrees with the spec name 'server.cache'" in f.message
            for f in findings
        ), findings

    def test_unresolvable_lockish_reference_warns(self, tmp_path):
        mod = write_module(
            tmp_path,
            "fix.py",
            """
            def use(some_lock):
                with some_lock:
                    pass
            """,
        )
        rule = LockOrder(files=[mod], spec=fixture_spec())
        findings = list(rule.run(AnalysisContext(tmp_path)))
        assert any(
            f.severity == "warning"
            and "unresolvable lock reference 'some_lock'" in f.message
            for f in findings
        ), findings

    def test_reentrant_rlock_reacquire_is_not_an_edge(self, tmp_path):
        mod = write_module(
            tmp_path,
            "fix.py",
            """
            from repro.locks import make_rlock

            _a = make_rlock("fix.alpha")

            def outer():
                with _a:
                    inner()

            def inner():
                with _a:
                    pass
            """,
        )
        rule = LockOrder(files=[mod], spec=fixture_spec(**{"fix.alpha": 1}))
        assert list(rule.run(AnalysisContext(tmp_path))) == []


# ------------------------------------------- LEX-C001 vs the PR 7 bug
#
# The storage engine's original checkpoint took the backend lock first
# and the catalog write lock second, while every query path nested them
# the other way around — a real deadlock fixed in PR 7's follow-up.  The
# rule must reproduce that finding when the fix is reverted, using the
# *shipped* spec (Database/FileBackend resolution and ranks), and pass
# the fixed ordering.

_CHECKPOINT_TEMPLATE = """
import threading

class Database:
    def __init__(self):
        self._write_lock = threading.RLock()

    @property
    def write_lock(self):
        return self._write_lock

    def snapshot_state(self):
        with self._write_lock:
            return {{}}

class FileBackend:
    def __init__(self, db):
        self._lock = threading.RLock()
        self._db = db

    def checkpoint(self):
        with {first}:
            with {second}:
                return self._db.snapshot_state()
"""


class TestCheckpointInversionRegression:
    def test_reverted_pr7_fix_fires(self, tmp_path):
        mod = write_module(
            tmp_path,
            "storage_fixture.py",
            _CHECKPOINT_TEMPLATE.format(
                first="self._lock", second="self._db.write_lock"
            ),
        )
        rule = LockOrder(files=[mod], spec=DEFAULT_SPEC)
        findings = list(rule.run(AnalysisContext(tmp_path)))
        assert any(
            "lock order inversion" in f.message
            and "'minidb.catalog.write'" in f.message
            and "'storage.backend'" in f.message
            for f in findings
        ), findings

    def test_fixed_ordering_is_clean(self, tmp_path):
        mod = write_module(
            tmp_path,
            "storage_fixture.py",
            _CHECKPOINT_TEMPLATE.format(
                first="self._db.write_lock", second="self._lock"
            ),
        )
        rule = LockOrder(files=[mod], spec=DEFAULT_SPEC)
        assert list(rule.run(AnalysisContext(tmp_path))) == []


# ------------------------------------------------------------- LEX-C002


class TestAsyncBlocking:
    def test_blocking_calls_in_async_def_fire(self, tmp_path):
        mod = write_module(
            tmp_path,
            "srv.py",
            """
            import time
            import os

            class Handler:
                async def handle(self):
                    time.sleep(0.1)
                    os.fsync(3)
                    open("x")
                    self._lock.acquire()
                    with self._lock:
                        pass
            """,
        )
        rule = AsyncBlocking(files=[mod], sanctioned={})
        messages = [
            f.message for f in rule.run(AnalysisContext(tmp_path))
        ]
        assert any("time.sleep" in m for m in messages)
        assert any("os.fsync" in m for m in messages)
        assert any("open()" in m for m in messages)
        assert any("untimed .acquire()" in m for m in messages)
        assert any("synchronous 'with self._lock'" in m for m in messages)

    def test_timed_acquire_and_sync_defs_are_clean(self, tmp_path):
        mod = write_module(
            tmp_path,
            "srv.py",
            """
            import asyncio
            import time

            class Handler:
                async def ok(self):
                    await asyncio.sleep(0)
                    self._lock.acquire(timeout=1.0)

                async def offload(self):
                    def work():
                        time.sleep(1)  # runs in an executor, not here
                    return work

                def sync_path(self):
                    time.sleep(1)
            """,
        )
        rule = AsyncBlocking(files=[mod], sanctioned={})
        assert list(rule.run(AnalysisContext(tmp_path))) == []

    def test_sanctioned_site_is_skipped(self, tmp_path):
        mod = write_module(
            tmp_path,
            "srv.py",
            """
            import time

            async def slow():
                time.sleep(1)
            """,
        )
        rule = AsyncBlocking(
            files=[mod], sanctioned={(mod, "slow"): "fixture reason"}
        )
        assert list(rule.run(AnalysisContext(tmp_path))) == []


# ------------------------------------------------------------- LEX-C003


class TestForkSignalSafety:
    FIXTURE = """
    import os
    import signal
    import threading

    _lk = threading.Lock()

    def _hook():
        with _lk:
            pass

    def _handler(signum, frame):
        threading.Thread(target=print).start()

    os.register_at_fork(after_in_child=_hook)
    signal.signal(signal.SIGTERM, _handler)
    """

    def test_lock_in_fork_hook_and_thread_in_handler_fire(self, tmp_path):
        mod = write_module(tmp_path, "hooks.py", self.FIXTURE)
        rule = ForkSignalSafety(
            files=[mod],
            spec=fixture_spec(),
            sanctioned_fork={},
            sanctioned_signal={},
        )
        messages = [
            f.message for f in rule.run(AnalysisContext(tmp_path))
        ]
        assert any(
            "acquired in _hook" in m and "fork hook" in m
            for m in messages
        ), messages
        assert any(
            "thread started in _handler" in m and "signal hook" in m
            for m in messages
        ), messages

    def test_sanctioned_sites_are_skipped(self, tmp_path):
        mod = write_module(tmp_path, "hooks.py", self.FIXTURE)
        rule = ForkSignalSafety(
            files=[mod],
            spec=fixture_spec(),
            sanctioned_fork={(mod, "_hook"): "fixture reason"},
            sanctioned_signal={(mod, "_handler"): "fixture reason"},
        )
        assert list(rule.run(AnalysisContext(tmp_path))) == []

    def test_unresolvable_handler_warns(self, tmp_path):
        mod = write_module(
            tmp_path,
            "hooks.py",
            """
            import os

            os.register_at_fork(before=ghost)
            """,
        )
        rule = ForkSignalSafety(
            files=[mod],
            spec=fixture_spec(),
            sanctioned_fork={},
            sanctioned_signal={},
        )
        findings = list(rule.run(AnalysisContext(tmp_path)))
        assert any(
            f.severity == "warning"
            and "unresolvable handler 'ghost'" in f.message
            for f in findings
        ), findings


# ------------------------------------------------------------- LEX-C004


class TestResourceLifecycle:
    def test_leaked_and_unowned_resources_fire(self, tmp_path):
        mod = write_module(
            tmp_path,
            "res.py",
            """
            def leak(path):
                handle = open(path)
                data = handle.read()
                return len(data)

            def bare(path):
                open(path).read()
            """,
        )
        rule = ResourceLifecycle(files=[mod])
        messages = [
            f.message for f in rule.run(AnalysisContext(tmp_path))
        ]
        assert any(
            "assigns a resource to 'handle'" in m for m in messages
        ), messages
        assert any("no with/try-finally" in m for m in messages), messages

    def test_managed_resources_are_clean(self, tmp_path):
        mod = write_module(
            tmp_path,
            "res.py",
            """
            def ok_with(path):
                with open(path) as fh:
                    return fh.read()

            def ok_finally(path):
                fh = open(path)
                try:
                    return fh.read()
                finally:
                    fh.close()

            def ok_transfer(path):
                return open(path)

            class Holder:
                def __init__(self, path):
                    self._fh = open(path)
            """,
        )
        rule = ResourceLifecycle(files=[mod])
        assert list(rule.run(AnalysisContext(tmp_path))) == []


# ------------------------------------------------------------- LEX-C005


class TestDeadlinePolls:
    FIXTURE = """
    from repro import deadline

    def scan_bad(items):
        i = 0
        while i < len(items):
            i += 1

    def scan_polled(items):
        i = 0
        while i < len(items):
            deadline.check("fixture")
            i += 1

    def scan_mixed(rows):
        for row in rows:
            deadline.check("fixture")
        j = 10
        while j > 0:
            j -= 1

    def spin():
        deadline.check("fixture")
        while True:
            pass
    """

    def test_unpolled_loops_fire(self, tmp_path):
        mod = write_module(tmp_path, "hot.py", self.FIXTURE)
        rule = DeadlinePolls(files=[mod], sanctioned={})
        messages = [
            f.message for f in rule.run(AnalysisContext(tmp_path))
        ]
        # scan_bad never polls; spin polls once but its `while True`
        # never polls in-body.  The bounded scan in scan_mixed (a
        # function that polls at its own cadence) is fine.
        assert any("scan_bad" in m for m in messages), messages
        assert any("spin" in m for m in messages), messages
        assert len(messages) == 2, messages

    def test_sanctioned_loops_are_skipped(self, tmp_path):
        mod = write_module(tmp_path, "hot.py", self.FIXTURE)
        rule = DeadlinePolls(
            files=[mod],
            sanctioned={
                (mod, "scan_bad"): "fixture reason",
                (mod, "spin"): "fixture reason",
            },
        )
        assert list(rule.run(AnalysisContext(tmp_path))) == []


# ------------------------------------------------ the shipped spec fits


class TestShippedSpec:
    def test_checkpoint_nesting_is_seen_and_sanctioned(self):
        """The analyzer actually observes the PR 7 invariant.

        Guards against the clean repo-wide pass being vacuous: the real
        checkpoint path must produce the catalog->backend edge, and the
        shipped spec must sanction exactly that direction.
        """
        graph = LockGraph(AnalysisContext())
        pairs = {(e.outer, e.inner) for e in graph.edges()}
        assert ("minidb.catalog.write", "storage.backend") in pairs
        assert ("storage.backend", "minidb.catalog.write") not in pairs
        assert DEFAULT_SPEC.allows(
            "minidb.catalog.write", "storage.backend"
        )
        assert not DEFAULT_SPEC.allows(
            "storage.backend", "minidb.catalog.write"
        )

    def test_every_discovered_lock_is_ranked(self):
        graph = LockGraph(AnalysisContext())
        unranked = {
            c.lock
            for c in graph.creations
            if DEFAULT_SPEC.rank(c.lock) is None
        }
        assert unranked == set()
