"""Cluster tests: ring ownership, result cache, merge, router behaviour.

Unit-level coverage of the shard ring (process-stable CRC-32
ownership), the router's TTL result cache, the merge-by-union boundary
and degradation labeling, and shard-side broadcast-INSERT filtering —
plus one scripted end-to-end scenario against a real
:class:`BackgroundCluster` (full answers, cache identity, shard loss →
labeled degradation, write fencing, recovery, zero leaked processes).
The high-volume chaos path lives in ``scripts/cluster_smoke.py``.
"""

import os
import time

import pytest

from repro import faults, obs
from repro.cluster import (
    BackgroundCluster,
    ResultCache,
    owns_row,
    row_key,
    shard_name,
    shard_of,
    sharded_service,
)
from repro.cluster.router import ClusterRouter, _ShardOutcome
from repro.errors import ProtocolError, RequestFailedError
from repro.minidb.values import LangText
from repro.server import LexEqualClient, protocol
from repro.server.cache import StatementCache

LEXEQUAL_SQL = (
    "SELECT author FROM books "
    "WHERE author LEXEQUAL 'Nehru' THRESHOLD 0.25"
)
EXPECTED_AUTHORS = {"Nehru", "नेहरु", "நேரு"}


@pytest.fixture(autouse=True)
def _clean_state():
    faults.reset()
    yield
    faults.reset()
    obs.disable()


def authors_of(result: dict) -> set:
    return {row[0]["text"] for row in result["rows"]}


# ---------------------------------------------------------------- ring


class TestRing:
    def test_shard_of_is_stable_across_processes(self):
        # CRC-32 is unsalted: these pins hold in every Python process,
        # which is what lets router, shards and offline tools agree.
        assert shard_of("Nehru", 3) == shard_of("Nehru", 3)
        for key in ("Nehru", "नेहरु", "Tchaikovsky", ""):
            assert 0 <= shard_of(key, 4) < 4

    def test_shard_of_rejects_empty_ring(self):
        with pytest.raises(ValueError):
            shard_of("Nehru", 0)

    def test_row_key_prefers_langtext_over_plain_strings(self):
        row = ("isbn-123", LangText("Nehru", "en"), "biography")
        assert row_key(row) == "Nehru"

    def test_row_key_falls_back_to_first_string(self):
        assert row_key((7, "plain", "other")) == "plain"

    def test_keyless_rows_belong_to_shard_zero(self):
        row = (1, 2.5, None)
        assert row_key(row) is None
        assert owns_row(row, 0, 4)
        assert not any(owns_row(row, i, 4) for i in (1, 2, 3))

    def test_ownership_partitions_every_key(self):
        keys = ["Nehru", "नेहरु", "நேரு", "Color", "Kolour", "Asha"]
        for key in keys:
            owners = [
                i for i in range(3) if owns_row((LangText(key, "en"),), i, 3)
            ]
            assert owners == [shard_of(key, 3)]

    def test_shard_name(self):
        assert shard_name(2) == "shard-2"


# --------------------------------------------------------------- cache


class TestResultCache:
    def make(self, max_entries=4, ttl=5.0):
        clock = [0.0]
        cache = ResultCache(max_entries, ttl, clock=lambda: clock[0])
        return cache, clock

    def test_hit_then_ttl_expiry(self):
        cache, clock = self.make(ttl=5.0)
        cache.put("k", {"row_count": 1})
        assert cache.get("k") == {"row_count": 1}
        clock[0] = 4.9
        assert cache.get("k") == {"row_count": 1}
        clock[0] = 5.0
        assert cache.get("k") is None
        info = cache.info()
        assert info["hits"] == 2 and info["misses"] == 1
        assert info["entries"] == 0  # expired entry was dropped

    def test_eviction_drops_oldest_insert(self):
        cache, _ = self.make(max_entries=2)
        cache.put("a", {"v": 1})
        cache.put("b", {"v": 2})
        cache.put("a", {"v": 3})  # re-insert moves "a" to the back
        cache.put("c", {"v": 4})  # evicts "b", the oldest
        assert cache.get("b") is None
        assert cache.get("a") == {"v": 3}
        assert cache.get("c") == {"v": 4}

    def test_flush_counts_invalidations(self):
        cache, _ = self.make()
        cache.put("a", {})
        cache.put("b", {})
        assert cache.flush() == 2
        assert cache.flush() == 0
        assert cache.info()["invalidations"] == 2
        assert cache.get("a") is None

    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            ResultCache(0, 1.0)
        with pytest.raises(ValueError):
            ResultCache(1, 0.0)


# --------------------------------------------------------------- merge


def _ok(index, result):
    return _ShardOutcome(index, shard_name(index), True, result=result)


def _fail(index, reason="timeout"):
    return _ShardOutcome(index, shard_name(index), False, reason=reason)


class TestMergeRead:
    """`_merge_read` is pure: it reads nothing from the router."""

    def merge(self, outcomes, down=()):
        return ClusterRouter._merge_read(None, list(outcomes), list(down))

    def test_union_dedupes_across_shards(self):
        rows_a = [[{"text": "Nehru", "lang": "en"}]]
        rows_b = [
            [{"text": "Nehru", "lang": "en"}],  # duplicate of shard 0's
            [{"text": "नेहरु", "lang": "hi"}],
        ]
        payload, clean = self.merge(
            [
                _ok(0, {"columns": ["author"], "rows": rows_a,
                        "row_count": 1}),
                _ok(1, {"columns": ["author"], "rows": rows_b,
                        "row_count": 2}),
            ]
        )
        assert clean
        assert payload["row_count"] == 2
        assert payload["columns"] == ["author"]
        texts = [row[0]["text"] for row in payload["rows"]]
        assert texts == ["Nehru", "नेहरु"]
        assert "degraded" not in payload

    def test_failed_shards_are_named_and_sorted(self):
        payload, clean = self.merge(
            [
                _ok(1, {"columns": [], "rows": [], "row_count": 0}),
                _fail(2, "timeout"),
            ],
            down=["shard-0"],
        )
        assert not clean
        assert payload["degraded"] is True
        assert payload["failed_shards"] == ["shard-0", "shard-2"]

    def test_shard_level_degradation_propagates(self):
        payload, clean = self.merge(
            [
                _ok(0, {"columns": [], "rows": [], "row_count": 0,
                        "degraded": True, "failed_languages": ["ta"]}),
                _ok(1, {"columns": [], "rows": [], "row_count": 0,
                        "failed_languages": ["hi"]}),
            ]
        )
        assert not clean
        assert payload["degraded"] is True
        assert payload["failed_languages"] == ["hi", "ta"]
        assert "failed_shards" not in payload  # every shard answered

    def test_all_shards_failed_is_unavailable(self):
        with pytest.raises(ProtocolError) as err:
            self.merge([_fail(0), _fail(1)], down=["shard-2"])
        assert err.value.code == protocol.E_UNAVAILABLE

    def test_countlike_results_sum(self):
        payload, clean = self.merge(
            [_ok(0, {"row_count": 2}), _ok(1, {"row_count": 3})]
        )
        assert clean and payload == {"row_count": 5}


class TestMergeableBoundary:
    def check(self, sql):
        ClusterRouter._check_mergeable(StatementCache(8).statement(sql))

    def test_plain_and_distinct_selects_pass(self):
        self.check("SELECT author FROM books")
        self.check("SELECT DISTINCT author FROM books")
        self.check(LEXEQUAL_SQL)

    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT author FROM books ORDER BY author",
            "SELECT author FROM books LIMIT 3",
            "SELECT author FROM books GROUP BY author",
            "SELECT COUNT(*) FROM books",
            "EXPLAIN SELECT author FROM books ORDER BY author",
        ],
    )
    def test_unmergeable_reads_are_rejected(self, sql):
        with pytest.raises(ProtocolError) as err:
            self.check(sql)
        assert err.value.code == protocol.E_SQL
        assert "merge by union" in str(err.value)


# ------------------------------------------------------ sharded backend


class TestShardedBackend:
    def test_demo_slices_are_disjoint_and_complete(self):
        services = [
            sharded_service(i, 2, strategy="none") for i in range(2)
        ]
        slices = [
            authors_of(s.run_sql(LEXEQUAL_SQL, {})) for s in services
        ]
        assert slices[0] & slices[1] == set()
        assert slices[0] | slices[1] == EXPECTED_AUTHORS
        totals = [
            s.run_sql("SELECT author FROM books", {})["row_count"]
            for s in services
        ]
        assert sum(totals) == 6 and all(t > 0 for t in totals)

    def test_broadcast_insert_lands_each_row_exactly_once(self):
        services = [
            sharded_service(i, 2, strategy="none") for i in range(2)
        ]
        ddl = "CREATE TABLE loans (name TEXT, title TEXT)"
        assert [s.run_sql(ddl, {})["row_count"] for s in services] == [0, 0]
        sql = (
            "INSERT INTO loans VALUES "
            "('Tagore', 'Gitanjali'), ('Thakur', 'Chokher Bali')"
        )
        counts = [s.run_sql(sql, {})["row_count"] for s in services]
        assert sum(counts) == 2  # disjoint: the router sums these
        for name in ("Tagore", "Thakur"):
            holders = [
                s.run_sql(
                    f"SELECT name FROM loans WHERE name = '{name}'", {}
                )["row_count"]
                for s in services
            ]
            owner = [
                int(owns_row((name,), s.shard_index, 2)) for s in services
            ]
            assert holders == owner

    def test_shard_index_bounds_checked(self):
        with pytest.raises(ValueError):
            sharded_service(2, 2, strategy="none")


# ----------------------------------------------------------- end to end


class TestClusterEndToEnd:
    def test_scripted_failover_scenario(self):
        """One cluster, one story: serve → lose a shard → heal.

        Kept as a single scripted test because each phase depends on
        the cluster state the previous one left behind; the randomized
        high-volume version is ``scripts/cluster_smoke.py``.
        """
        from repro.server import RetryPolicy

        bg = BackgroundCluster(
            2,
            shard_args=("--strategy", "none"),
            supervisor_options={
                "health_interval": 0.2,
                # Hold the dead shard down for a couple of seconds so
                # the degraded window is wide enough to assert on.
                "restart_policy": RetryPolicy(
                    max_attempts=100,
                    base_delay=2.0,
                    multiplier=1.0,
                    max_delay=2.0,
                ),
            },
            cache_ttl=30.0,
        )
        with bg:
            with LexEqualClient(bg.host, bg.port, timeout=15.0) as client:
                health = client.health()
                assert health["status"] == "ok"
                assert health["role"] == "router"
                assert health["strategy"] == "cluster"
                assert len(health["shards"]) == 2
                pids = [s["pid"] for s in health["shards"]]

                # Full fan-out: the union of both slices, not degraded.
                result = client.query(LEXEQUAL_SQL)
                assert authors_of(result) == EXPECTED_AUTHORS
                assert "degraded" not in result

                # Hot repeat is served from the router cache.
                again = client.query(LEXEQUAL_SQL)
                assert again == result
                assert client.health()["cache"]["hits"] >= 1

                # The merge boundary is enforced at the router.
                with pytest.raises(RequestFailedError) as err:
                    client.query("SELECT author FROM books ORDER BY author")
                assert err.value.code == protocol.E_SQL

                # Lose shard 0.  The cached LEXEQUAL answer keeps
                # being served in full (degraded results are never
                # cached, so nothing stale can replace it), while an
                # *uncached* read degrades with the lost shard named.
                bg.supervisor.kill_shard(0)
                deadline = time.monotonic() + 30.0
                degraded = None
                while time.monotonic() < deadline:
                    cached = client.query(LEXEQUAL_SQL)
                    assert authors_of(cached) == EXPECTED_AUTHORS
                    candidate = client.query("SELECT title FROM books")
                    if candidate.get("degraded"):
                        degraded = candidate
                        break
                    time.sleep(0.1)
                assert degraded is not None, "loss was never labeled"
                assert degraded["failed_shards"] == ["shard-0"]
                assert 0 < degraded["row_count"] < 6

                # ...and once the supervisor has marked it down, writes
                # are fenced up front rather than applied partially.
                deadline = time.monotonic() + 30.0
                while (
                    bg.supervisor.shards[0].state == "up"
                    and time.monotonic() < deadline
                ):
                    time.sleep(0.05)
                assert bg.supervisor.shards[0].state != "up"
                with pytest.raises(RequestFailedError) as err:
                    client.query(
                        "CREATE TABLE loans (name TEXT, title TEXT)"
                    )
                assert err.value.code == protocol.E_UNAVAILABLE
                assert "requires every shard up" in str(err.value)

                # The supervisor restarts the shard; service heals
                # once the router's breaker lets a probe through.
                assert bg.supervisor.wait_all_up(timeout=60.0)
                deadline = time.monotonic() + 30.0
                healed = None
                while time.monotonic() < deadline:
                    candidate = client.query("SELECT title FROM books")
                    if not candidate.get("degraded"):
                        healed = candidate
                        break
                    time.sleep(0.2)
                assert healed is not None, "cluster never healed"
                assert healed["row_count"] == 6

                # Writes work again: DDL broadcasts to every shard
                # (reported once), INSERT rows land exactly once, and
                # the result cache is flushed.
                made = client.query(
                    "CREATE TABLE loans (name TEXT, title TEXT)"
                )
                assert made["row_count"] == 0
                wrote = client.query(
                    "INSERT INTO loans VALUES "
                    "('Tagore', 'Gitanjali'), ('Thakur', 'Chokher Bali')"
                )
                assert wrote["row_count"] == 2
                assert client.health()["cache"]["entries"] == 0
                after = client.query("SELECT name FROM loans")
                assert after["row_count"] == 2
                assert {r[0] for r in after["rows"]} == {"Tagore", "Thakur"}

        # The drain reaped every shard process: nothing leaked.
        for pid in pids:
            with pytest.raises(ProcessLookupError):
                os.kill(pid, 0)
