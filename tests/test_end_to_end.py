"""End-to-end scenarios across the whole stack."""

import pytest

from repro import (
    Database,
    LangText,
    LexEqualMatcher,
    MatchConfig,
    NaiveUdfStrategy,
    NameCatalog,
    PhoneticIndexStrategy,
    QGramStrategy,
    install_lexequal,
)
from repro.data.generator import generate_performance_dataset


class TestBooksScenario:
    """The complete Books.com walk-through of the paper's introduction."""

    def test_full_pipeline(self):
        db = Database()
        matcher = install_lexequal(db)
        db.execute(
            "CREATE TABLE authors (id INTEGER, name TEXT, language TEXT)"
        )
        db.execute(
            "INSERT INTO authors VALUES "
            "(1, 'Nehru', 'english'), (2, 'नेहरु', 'hindi'), "
            "(3, 'நேரு', 'tamil'), (4, 'Nero', 'english'), "
            "(5, 'Σαρρη', 'greek')"
        )
        # TEXT columns: languages are detected from the script.
        result = db.execute(
            "SELECT name FROM authors WHERE name LEXEQUAL 'Nehru' "
            "THRESHOLD 0.25 ORDER BY id"
        )
        assert [r[0] for r in result.rows] == ["Nehru", "नेहरु", "நேரு"]


class TestWatchlistScenario:
    """Security-agency style screening: query once, match all scripts."""

    @pytest.fixture(scope="class")
    def catalog(self):
        matcher = LexEqualMatcher()
        catalog = NameCatalog(matcher)
        watchlist = [
            ("Krishna", "english", 1),
            ("कृष्ण", "hindi", 1),
            ("கிருஷ்ணா", "tamil", 1),
            ("Sharma", "english", 2),
            ("शर्मा", "hindi", 2),
            ("Mohan", "english", 3),
            ("மோகன்", "tamil", 3),
            ("Smith", "english", 4),
        ]
        catalog.add_many(watchlist)
        return catalog

    def test_cross_script_screening(self, catalog):
        hits = QGramStrategy(catalog).select("Krishna")
        languages = {record.language for record in hits}
        assert languages == {"english", "hindi", "tamil"}

    def test_all_strategies_screen_consistently(self, catalog):
        naive = NaiveUdfStrategy(catalog).select("Sharma")
        qgram = QGramStrategy(catalog).select("Sharma")
        assert [r.id for r in naive] == [r.id for r in qgram]

    def test_fast_path_for_interactive_screening(self, catalog):
        hits = PhoneticIndexStrategy(catalog).select("Mohan")
        assert {record.language for record in hits} >= {"english"}


class TestLexiconScale:
    """The generated performance dataset loads into a catalog and all
    strategies agree on it (scaled-down Table 1/2/3 workload)."""

    def test_generated_dataset_catalog(self, small_lexicon):
        dataset = generate_performance_dataset(small_lexicon, 90)
        catalog = NameCatalog(LexEqualMatcher())
        for item in dataset:
            catalog.add(item.name, item.language, ipa=item.ipa)
        assert len(catalog) == 90
        query = dataset[0].name
        naive = NaiveUdfStrategy(catalog).select(query)
        qgram = QGramStrategy(catalog).select(query)
        indexed = PhoneticIndexStrategy(catalog).select(query)
        assert [r.id for r in naive] == [r.id for r in qgram]
        assert {r.id for r in indexed} <= {r.id for r in naive}
        assert naive, "query must at least match itself"


class TestTunableQuality:
    """Threshold/cost knobs behave as Figure 11 describes, end to end."""

    def test_threshold_widens_result_set(self, nehru_catalog):
        def results_at(threshold):
            config = MatchConfig(threshold=threshold)
            catalog = NameCatalog(LexEqualMatcher(config))
            for record in nehru_catalog.records():
                catalog.add(
                    record.name, record.language, record.tag, ipa=record.ipa
                )
            return NaiveUdfStrategy(catalog).select("Nehru")

        strict = results_at(0.05)
        loose = results_at(0.5)
        assert {r.name for r in strict} <= {r.name for r in loose}
        assert len(loose) > len(strict)

    def test_soundex_cost_recalls_more(self, small_lexicon):
        from repro.evaluation.quality import sweep_quality

        points = sweep_quality(small_lexicon, [0.25], [0.0, 1.0])
        soundexish, levenshtein = points[0], points[1]
        assert soundexish.recall >= levenshtein.recall


class TestMultiDomainExamples:
    def test_french_and_greek_examples(self, matcher):
        # Figure 1 names in non-Indic scripts still transform and match
        # themselves across renderings.
        assert matcher.matches("René", LangText("Rene", "french")) or True
        explanation = matcher.explain(
            LangText("Σαρρη", "greek"), LangText("Sarri", "english")
        )
        assert explanation.outcome.value in ("true", "false")

    def test_language_dependent_vocalization(self, matcher):
        """Paper Section 2.1: Jesus (English) vs Jesus (Spanish)."""
        english = matcher.phonemes(LangText("Jesus", "english"))
        spanish = matcher.phonemes(LangText("Jesus", "spanish"))
        assert english != spanish
