"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core import LexEqualMatcher, NameCatalog
from repro.data.lexicon import MultiscriptLexicon, build_lexicon


@pytest.fixture(scope="session")
def matcher() -> LexEqualMatcher:
    """A matcher with library defaults (shared TTP cache)."""
    return LexEqualMatcher()


@pytest.fixture(scope="session")
def small_lexicon() -> MultiscriptLexicon:
    """A three-script lexicon over a small slice of each domain."""
    return build_lexicon(limit_per_domain=25)


@pytest.fixture()
def nehru_catalog(matcher: LexEqualMatcher) -> NameCatalog:
    """A small catalog with three tagged groups across three scripts."""
    catalog = NameCatalog(matcher)
    catalog.add_many(
        [
            ("Nehru", "english", 1),
            ("नेहरु", "hindi", 1),
            ("நேரு", "tamil", 1),
            ("Nero", "english", 2),
            ("Gandhi", "english", 3),
            ("गांधी", "hindi", 3),
            ("காந்தி", "tamil", 3),
            ("Krishnan", "english", 4),
            ("कृष्णन", "hindi", 4),
            ("Smith", "english", 5),
        ]
    )
    return catalog


@pytest.fixture(scope="session", autouse=True)
def _locksan_gate():
    """The tier-1 locksan gate (REPRO_LOCKSAN=1, DESIGN.md §8).

    Order inversions and non-owner releases raise at their call sites;
    hold-across-fork is *deferred* (CPython swallows exceptions inside
    at-fork hooks), so this session-scoped teardown fails the sanitized
    run if any deferred violation was recorded and never consumed by a
    test that expected it.
    """
    yield
    from repro.locks import sanitizer_enabled

    if not sanitizer_enabled():
        return
    from repro.analysis import sanitizer

    leftover = sanitizer.take_violations()
    assert not leftover, (
        "lock sanitizer recorded deferred violations:\n\n"
        + "\n\n".join(leftover)
    )
