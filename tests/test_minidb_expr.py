"""Unit tests for SQL expression compilation and three-valued logic."""

import pytest

from repro.errors import PlanningError
from repro.minidb.expr import (
    Aggregate,
    Between,
    BinaryOp,
    BoolOp,
    ColumnRef,
    FuncCall,
    InList,
    IsNull,
    LexEqual,
    Literal,
    Param,
    RowLayout,
    UnaryOp,
    compile_expr,
    contains_aggregate,
    walk,
)


def no_udf(name):
    raise PlanningError(f"no udf {name}")


def evaluate(expr, row=(), layout=None, udfs=no_udf, params=None):
    layout = layout or RowLayout()
    return compile_expr(expr, layout, udfs, params)(row)


LAYOUT = RowLayout.for_table("t", ["a", "b"])


def col(name):
    return ColumnRef("t", name)


class TestScalars:
    def test_literal(self):
        assert evaluate(Literal(42)) == 42

    def test_param_binding(self):
        assert evaluate(Param("x"), params={"x": 7}) == 7

    def test_unbound_param_raises_at_compile(self):
        with pytest.raises(PlanningError):
            compile_expr(Param("x"), RowLayout(), no_udf, {})

    def test_column_reference(self):
        fn = compile_expr(col("b"), LAYOUT, no_udf)
        assert fn((1, 2)) == 2

    def test_arithmetic(self):
        expr = BinaryOp("*", BinaryOp("+", Literal(2), Literal(3)), Literal(4))
        assert evaluate(expr) == 20

    def test_division(self):
        assert evaluate(BinaryOp("/", Literal(7), Literal(2))) == 3.5

    def test_concat(self):
        assert evaluate(BinaryOp("||", Literal("a"), Literal("b"))) == "ab"

    def test_unary_minus(self):
        assert evaluate(UnaryOp("-", Literal(5))) == -5

    def test_builtins(self):
        assert evaluate(FuncCall("abs", (Literal(-3),))) == 3
        assert evaluate(FuncCall("length", (Literal("abcd"),))) == 4
        assert evaluate(FuncCall("upper", (Literal("ab"),))) == "AB"
        assert evaluate(FuncCall("lower", (Literal("AB"),))) == "ab"
        assert (
            evaluate(
                FuncCall("coalesce", (Literal(None), Literal(None), Literal(3)))
            )
            == 3
        )

    def test_udf_resolution(self):
        def resolver(name):
            assert name == "twice"
            return lambda x: x * 2

        assert evaluate(FuncCall("twice", (Literal(21),)), udfs=resolver) == 42


class TestThreeValuedLogic:
    def test_comparison_with_null_is_null(self):
        for op in ("=", "<>", "<", "<=", ">", ">="):
            assert evaluate(BinaryOp(op, Literal(None), Literal(1))) is None

    def test_arithmetic_with_null_is_null(self):
        assert evaluate(BinaryOp("+", Literal(None), Literal(1))) is None

    def test_kleene_and(self):
        T, F, N = Literal(True), Literal(False), Literal(None)
        assert evaluate(BoolOp("AND", (T, T))) is True
        assert evaluate(BoolOp("AND", (T, F))) is False
        assert evaluate(BoolOp("AND", (F, N))) is False  # false dominates
        assert evaluate(BoolOp("AND", (T, N))) is None

    def test_kleene_or(self):
        T, F, N = Literal(True), Literal(False), Literal(None)
        assert evaluate(BoolOp("OR", (F, F))) is False
        assert evaluate(BoolOp("OR", (F, T))) is True
        assert evaluate(BoolOp("OR", (T, N))) is True  # true dominates
        assert evaluate(BoolOp("OR", (F, N))) is None

    def test_not_null_is_null(self):
        assert evaluate(UnaryOp("NOT", Literal(None))) is None

    def test_between_null(self):
        expr = Between(Literal(None), Literal(1), Literal(2))
        assert evaluate(expr) is None

    def test_between_negated(self):
        expr = Between(Literal(5), Literal(1), Literal(2), negated=True)
        assert evaluate(expr) is True

    def test_in_list(self):
        expr = InList(Literal(2), (Literal(1), Literal(2)))
        assert evaluate(expr) is True
        expr = InList(Literal(None), (Literal(1),))
        assert evaluate(expr) is None

    def test_is_null(self):
        assert evaluate(IsNull(Literal(None))) is True
        assert evaluate(IsNull(Literal(1))) is False
        assert evaluate(IsNull(Literal(1), negated=True)) is True


class TestCompileErrors:
    def test_aggregate_outside_group_by(self):
        with pytest.raises(PlanningError):
            compile_expr(Aggregate("COUNT", None), RowLayout(), no_udf)

    def test_unlowered_lexequal(self):
        expr = LexEqual(Literal("a"), Literal("b"), Literal(0.2))
        with pytest.raises(PlanningError):
            compile_expr(expr, RowLayout(), no_udf)


class TestTreeUtilities:
    def test_walk_visits_all_nodes(self):
        expr = BoolOp(
            "AND",
            (
                BinaryOp("=", col("a"), Literal(1)),
                IsNull(col("b")),
            ),
        )
        kinds = [type(node).__name__ for node in walk(expr)]
        assert kinds.count("ColumnRef") == 2
        assert "BoolOp" in kinds and "IsNull" in kinds

    def test_contains_aggregate(self):
        assert contains_aggregate(
            BinaryOp(">", Aggregate("COUNT", None), Literal(2))
        )
        assert not contains_aggregate(BinaryOp(">", col("a"), Literal(2)))

    def test_walk_lexequal(self):
        expr = LexEqual(col("a"), Literal("x"), Literal(0.2))
        assert sum(isinstance(n, ColumnRef) for n in walk(expr)) == 1
