"""Shared-memory segment lifecycle: create/attach/close/unlink.

The executor's contract (DESIGN.md §9) is that ``/dev/shm`` holds
exactly one ``repro_par_*`` entry per live pool and zero after any exit
path: clean ``close()``, a worker killed mid-query, an idle worker
killed between queries, and SIGTERM delivered to the owning process.
"""

from __future__ import annotations

import glob
import os
import signal
import subprocess
import sys
import threading
import time

import numpy as np
import pytest

from repro import deadline
from repro.matching.costs import ClusteredCost
from repro.parallel import EncodedNameTable, ParallelMatchExecutor
from repro.parallel import shm as shm_mod
from repro.parallel.executor import ParallelExecutionError

SHM_DIR = "/dev/shm"
HAVE_SHM_DIR = os.path.isdir(SHM_DIR)

ROWS = [
    (0, "english", ("n", "e", "h", "r", "u")),
    (1, "hindi", ("n", "eː", "h", "r", "u")),
    (2, "english", ("n", "e", "r", "o")),
    (3, "tamil", ("n", "eː", "r", "u")),
    (4, "english", ("s", "m", "i", "θ")),
]


def _table() -> EncodedNameTable:
    return EncodedNameTable.from_rows(ClusteredCost(0.25), ROWS)


def shm_entries() -> set[str]:
    if not HAVE_SHM_DIR:
        return set()
    return {
        os.path.basename(p)
        for p in glob.glob(
            os.path.join(SHM_DIR, shm_mod.SEGMENT_PREFIX + "*")
        )
    }


# ------------------------------------------------------------- segments


class TestSharedSegment:
    def test_pack_attach_round_trip(self):
        arrays = {
            "codes": np.arange(17, dtype=np.int64),
            "costs": np.linspace(0, 1, 12).reshape(3, 4),
            "langs": np.array([0, 1, 0], dtype=np.int16),
            "empty": np.empty(0, dtype=np.float64),
        }
        segment = shm_mod.SharedSegment(arrays)
        try:
            assert segment.name.startswith(shm_mod.SEGMENT_PREFIX)
            attached = shm_mod.attach(segment.descriptor)
            for key, original in arrays.items():
                got = attached.arrays[key]
                assert got.dtype == original.dtype
                assert got.shape == original.shape
                assert np.array_equal(got, original)
            # Fields are 64-byte aligned so views are cache-friendly.
            for field in segment.descriptor.fields:
                assert field.offset % 64 == 0
            attached.close()
        finally:
            segment.unlink()

    def test_live_registry_and_idempotent_unlink(self):
        segment = shm_mod.SharedSegment(
            {"x": np.arange(4, dtype=np.int64)}
        )
        assert segment.name in shm_mod.live_segments()
        segment.unlink()
        assert segment.name not in shm_mod.live_segments()
        segment.unlink()  # second unlink is a no-op, not an error

    @pytest.mark.skipif(not HAVE_SHM_DIR, reason="no /dev/shm")
    def test_unlink_removes_dev_shm_entry(self):
        segment = shm_mod.SharedSegment(
            {"x": np.arange(8, dtype=np.int64)}
        )
        assert segment.name in shm_entries()
        segment.unlink()
        assert segment.name not in shm_entries()

    def test_attacher_close_does_not_unlink(self):
        segment = shm_mod.SharedSegment(
            {"x": np.arange(8, dtype=np.int64)}
        )
        try:
            attached = shm_mod.attach(segment.descriptor)
            attached.close()
            attached.close()  # idempotent
            # The segment survives its attachers.
            again = shm_mod.attach(segment.descriptor)
            assert np.array_equal(
                again.arrays["x"], np.arange(8, dtype=np.int64)
            )
            again.close()
        finally:
            segment.unlink()

    def test_table_share_attach_round_trip(self):
        table = _table()
        segment, descriptor = table.share()
        try:
            attached_table, attached = EncodedNameTable.attach(descriptor)
            assert np.array_equal(attached_table.codes, table.codes)
            assert np.array_equal(attached_table.offsets, table.offsets)
            assert np.array_equal(attached_table.ids, table.ids)
            assert np.array_equal(
                attached_table.encoded.sub, table.encoded.sub
            )
            assert attached_table.encoded.min_indel == (
                table.encoded.min_indel
            )
            assert attached_table.languages == table.languages
            attached.close()
        finally:
            segment.unlink()


# ------------------------------------------------------- executor paths


def _pool_executor(workers: int = 2) -> ParallelMatchExecutor:
    return ParallelMatchExecutor(_table(), workers=workers)


class TestExecutorLifecycle:
    def test_segment_unlinked_after_close(self):
        ex = _pool_executor()
        name = ex._segment.name
        assert name in shm_mod.live_segments()
        if HAVE_SHM_DIR:
            assert name in shm_entries()
        ids, _ = ex.match(("n", "e", "h", "r", "u"), 0.3)
        assert len(ids) > 0
        ex.close()
        assert name not in shm_mod.live_segments()
        if HAVE_SHM_DIR:
            assert name not in shm_entries()

    def test_close_is_idempotent_and_guards_use(self):
        ex = _pool_executor()
        ex.close()
        ex.close()
        with pytest.raises(ParallelExecutionError, match="after close"):
            ex.match(("n", "e"), 0.3)

    def test_worker_killed_mid_query_raises_and_unlinks(self):
        ex = _pool_executor()
        name = ex._segment.name
        victim = ex._workers[0].process
        # Freeze the worker so its shard result can never arrive, then
        # kill it while the query is blocked waiting on it.
        os.kill(victim.pid, signal.SIGSTOP)
        killer = threading.Timer(
            0.2, lambda: os.kill(victim.pid, signal.SIGKILL)
        )
        killer.start()
        try:
            with pytest.raises(
                ParallelExecutionError, match="died mid-query"
            ):
                ex.match(("n", "e", "h", "r", "u"), 0.3)
        finally:
            killer.cancel()
        # The crash tore the pool down and unlinked its segment ...
        assert name not in shm_mod.live_segments()
        if HAVE_SHM_DIR:
            assert name not in shm_entries()
        # ... and the next query transparently starts a fresh pool.
        ids, _ = ex.match(("n", "e", "h", "r", "u"), 0.3)
        assert len(ids) > 0
        ex.close()
        assert shm_mod.live_segments() == ()

    def test_idle_dead_worker_is_respawned_in_place(self):
        ex = _pool_executor()
        name = ex._segment.name
        victim = ex._workers[1].process
        os.kill(victim.pid, signal.SIGKILL)
        victim.join(timeout=2.0)
        assert not victim.is_alive()
        # The pool heals without tearing down: same segment, fresh
        # worker, correct answer.
        ids, _ = ex.match(("n", "e", "h", "r", "u"), 0.3)
        assert len(ids) > 0
        assert ex._segment is not None and ex._segment.name == name
        assert all(w.process.is_alive() for w in ex._workers)
        ex.close()
        if HAVE_SHM_DIR:
            assert name not in shm_entries()

    def test_pool_born_inside_deadline_scope_is_not_poisoned(self):
        # The server starts pools lazily inside a request's
        # deadline_scope; forked workers must not inherit that
        # request's armed deadline, or every later query fails once it
        # passes.
        with deadline.deadline_scope(0.05):
            ex = _pool_executor()
        time.sleep(0.1)  # the first request's deadline expires
        ids, _ = ex.match(("n", "e", "h", "r", "u"), 0.3)
        assert len(ids) > 0
        ex.close()

    def test_default_start_method_avoids_fork_with_threads(self):
        stop = threading.Event()
        thread = threading.Thread(target=stop.wait)
        thread.start()
        try:
            method = ParallelMatchExecutor._default_start_method()
        finally:
            stop.set()
            thread.join()
        assert method == "spawn"

    def test_spawn_pool_matches(self):
        ex = ParallelMatchExecutor(
            _table(), workers=2, start_method="spawn"
        )
        try:
            assert ex._ctx.get_start_method() == "spawn"
            ids, dists = ex.match(("n", "e", "h", "r", "u"), 0.3)
            assert len(ids) > 0
            assert np.all(np.isfinite(dists))
        finally:
            ex.close()
        assert shm_mod.live_segments() == ()

    def test_inline_executor_owns_no_segment(self):
        before = shm_mod.live_segments()
        ex = ParallelMatchExecutor(_table(), workers=1)
        assert ex._segment is None
        assert shm_mod.live_segments() == before
        ids, _ = ex.match(("n", "e", "h", "r", "u"), 0.3)
        assert len(ids) > 0
        ex.close()


# ----------------------------------------------------- signal cleanup


class TestSignalCleanup:
    def test_cleanup_for_signal_runs_with_registry_lock_held(self):
        # SIGTERM can land while the interrupted thread holds the
        # registry lock; the signal path must not touch it (a Lock is
        # not reentrant — this test would deadlock on regression).
        segment = shm_mod.SharedSegment(
            {"x": np.arange(4, dtype=np.int64)}
        )
        with shm_mod._live_lock:
            shm_mod._cleanup_for_signal()
        if HAVE_SHM_DIR:
            assert segment.name not in shm_entries()
        segment.unlink()  # still idempotent after the signal path

    def test_unlink_nolock_unlinks_even_after_flag_race(self):
        # A signal between unlink()'s flag-set and its shm_unlink must
        # still remove the /dev/shm entry: the signal path ignores the
        # _unlinked flag and swallows the double-unlink.
        segment = shm_mod.SharedSegment(
            {"x": np.arange(4, dtype=np.int64)}
        )
        segment._unlinked = True  # simulate the interrupted flag-set
        segment._unlink_nolock()
        if HAVE_SHM_DIR:
            assert segment.name not in shm_entries()
        segment._unlink_nolock()  # already gone: swallowed, no raise


# -------------------------------------------------- fork-child registry


class TestForgetAll:
    def test_forget_all_never_acquires_the_registry_lock(self):
        # _forget_all runs as the after_in_child fork hook: at fork time
        # another parent thread may hold _live_lock, and the child
        # inherits it locked with no owner.  The hook must complete even
        # then — it replaces the lock instead of acquiring it
        # (LEX-C003; this test deadlocks on regression).
        segment = shm_mod.SharedSegment(
            {"x": np.arange(4, dtype=np.int64)}
        )
        old_lock = shm_mod._live_lock
        old_lock.acquire()  # simulate the stuck inherited lock
        try:
            hook = threading.Thread(target=shm_mod._forget_all)
            hook.start()
            hook.join(timeout=5.0)
            assert not hook.is_alive(), (
                "_forget_all blocked on the inherited registry lock"
            )
        finally:
            old_lock.release()
        assert shm_mod._live_lock is not old_lock  # replaced wholesale
        assert shm_mod.live_segments() == ()  # registry emptied, usable
        segment.unlink()


# ------------------------------------------------------- SIGTERM drain

_SIGTERM_SCRIPT = """
import sys, time
from repro.matching.costs import ClusteredCost
from repro.parallel import EncodedNameTable, ParallelMatchExecutor

rows = [
    (0, "english", ("n", "e", "h", "r", "u")),
    (1, "hindi", ("n", "e", "r", "o")),
    (2, "tamil", ("n", "e", "r", "u")),
]
table = EncodedNameTable.from_rows(ClusteredCost(0.25), rows)
ex = ParallelMatchExecutor(table, workers=2)
ex.match(("n", "e", "h", "r", "u"), 0.3)
print(ex._segment.name, flush=True)
time.sleep(30)
"""


@pytest.mark.skipif(not HAVE_SHM_DIR, reason="no /dev/shm")
def test_sigterm_drain_unlinks_segment():
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "src")
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (src, env.get("PYTHONPATH")) if p
    )
    proc = subprocess.Popen(
        [sys.executable, "-c", _SIGTERM_SCRIPT],
        stdout=subprocess.PIPE,
        text=True,
        env=env,
    )
    try:
        name = proc.stdout.readline().strip()
        assert name.startswith(shm_mod.SEGMENT_PREFIX)
        assert name in shm_entries()
        proc.send_signal(signal.SIGTERM)
        proc.wait(timeout=10)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
    # The chained handler unlinked the segment, then re-raised the
    # default action so the exit status still says "killed by SIGTERM".
    assert proc.returncode == -signal.SIGTERM
    until = time.monotonic() + 5.0
    while name in shm_entries() and time.monotonic() < until:
        time.sleep(0.05)
    assert name not in shm_entries()


_ORPHAN_SCRIPT = """
import sys, time
from repro.matching.costs import ClusteredCost
from repro.parallel import EncodedNameTable, ParallelMatchExecutor

rows = [
    (0, "english", ("n", "e", "h", "r", "u")),
    (1, "hindi", ("n", "e", "r", "o")),
    (2, "tamil", ("n", "e", "r", "u")),
]
table = EncodedNameTable.from_rows(ClusteredCost(0.25), rows)
ex = ParallelMatchExecutor(table, workers=2)
ex.match(("n", "e", "h", "r", "u"), 0.3)
print(" ".join(str(w.process.pid) for w in ex._workers), flush=True)
time.sleep(30)
"""


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists, other owner
        return True
    return True


def test_workers_exit_after_parent_sigkill():
    # SIGKILL runs neither atexit nor daemon reaping, and pipe EOF
    # cannot fire (sibling workers hold fork-inherited copies of each
    # other's write ends) — the parent-liveness poll is what lets the
    # orphans exit instead of blocking in recv() forever.
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "src")
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (src, env.get("PYTHONPATH")) if p
    )
    proc = subprocess.Popen(
        [sys.executable, "-c", _ORPHAN_SCRIPT],
        stdout=subprocess.PIPE,
        text=True,
        env=env,
    )
    try:
        pids = [int(p) for p in proc.stdout.readline().split()]
        assert len(pids) == 2
        assert all(_pid_alive(p) for p in pids)
    finally:
        proc.kill()
        proc.wait()
    until = time.monotonic() + 10.0
    while any(_pid_alive(p) for p in pids) and time.monotonic() < until:
        time.sleep(0.1)
    assert not any(_pid_alive(p) for p in pids)


_SIGIGN_SCRIPT = """
import os, signal, sys, time
signal.signal(signal.SIGTERM, signal.SIG_IGN)
from repro.matching.costs import ClusteredCost
from repro.parallel import EncodedNameTable, ParallelMatchExecutor

rows = [
    (0, "english", ("n", "e", "h", "r", "u")),
    (1, "hindi", ("n", "e", "r", "o")),
    (2, "tamil", ("n", "e", "r", "u")),
]
table = EncodedNameTable.from_rows(ClusteredCost(0.25), rows)
ex = ParallelMatchExecutor(table, workers=2)
ex.match(("n", "e", "h", "r", "u"), 0.3)
print(ex._segment.name, flush=True)
for _ in range(200):  # survive SIGTERM, exit 0 once it was delivered
    time.sleep(0.05)
sys.exit(3)
"""


@pytest.mark.skipif(not HAVE_SHM_DIR, reason="no /dev/shm")
def test_sigterm_on_ignoring_process_cleans_up_but_does_not_kill():
    # A process that deliberately ignores SIGTERM must stay ignoring
    # it: the chained handler unlinks segments but does not convert
    # SIG_IGN into the default die-on-SIGTERM action.
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "src")
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (src, env.get("PYTHONPATH")) if p
    )
    proc = subprocess.Popen(
        [sys.executable, "-c", _SIGIGN_SCRIPT],
        stdout=subprocess.PIPE,
        text=True,
        env=env,
    )
    try:
        name = proc.stdout.readline().strip()
        assert name.startswith(shm_mod.SEGMENT_PREFIX)
        assert name in shm_entries()
        proc.send_signal(signal.SIGTERM)
        time.sleep(0.5)
        assert proc.poll() is None  # survived: SIG_IGN preserved
        until = time.monotonic() + 5.0
        while name in shm_entries() and time.monotonic() < until:
            time.sleep(0.05)
        assert name not in shm_entries()  # but cleanup still ran
    finally:
        proc.kill()
        proc.wait()
