"""Tests for phonetic keys (grouped key, Soundex) and phoneme folding."""

import pytest

from repro.errors import PhonemeError
from repro.phonetics.clusters import default_clustering
from repro.phonetics.folding import fold_phonemes, fold_symbol
from repro.phonetics.keys import grouped_key, grouped_key_string, soundex
from repro.phonetics.parse import parse_ipa


class TestGroupedKeySkeleton:
    def test_intra_cluster_substitution_preserves_key(self):
        # b and p share a cluster: same skeleton key.
        assert grouped_key(parse_ipa("bala")) == grouped_key(
            parse_ipa("pala")
        )

    def test_vowel_changes_preserve_key(self):
        assert grouped_key(parse_ipa("nehru")) == grouped_key(
            parse_ipa("nahri")
        )

    def test_laryngeal_presence_preserves_key(self):
        assert grouped_key(parse_ipa("nehru")) == grouped_key(
            parse_ipa("neru")
        )

    def test_consonant_cross_cluster_changes_key(self):
        assert grouped_key(parse_ipa("mala")) != grouped_key(
            parse_ipa("mana")
        )

    def test_consonant_insertion_changes_key(self):
        assert grouped_key(parse_ipa("rajan")) != grouped_key(
            parse_ipa("ranjan")
        )

    def test_nehru_triple_shares_key(self, matcher):
        from repro.minidb.values import LangText

        keys = {
            matcher.grouped_key_of("Nehru"),
            matcher.grouped_key_of(LangText("नेहरु", "hindi")),
            matcher.grouped_key_of(LangText("நேரு", "tamil")),
        }
        assert len(keys) == 1


class TestGroupedKeyFull:
    def test_full_mode_sensitive_to_length(self):
        a = grouped_key(parse_ipa("nehru"), mode="full")
        b = grouped_key(parse_ipa("neru"), mode="full")
        assert a != b

    def test_full_mode_vowel_cluster_preserved(self):
        assert grouped_key(parse_ipa("neru"), mode="full") == grouped_key(
            parse_ipa("nɛru"), mode="full"
        )

    def test_unknown_mode_rejected(self):
        with pytest.raises(PhonemeError):
            grouped_key(parse_ipa("na"), mode="bogus")

    def test_encoding_is_injective_for_distinct_cluster_strings(self):
        # multi-digit cluster ids must not collide positionally
        c = default_clustering()
        strings = [
            parse_ipa(s)
            for s in ["pata", "taka", "napa", "sala", "mara", "tʃapa"]
        ]
        keys = [grouped_key(s, c, mode="full") for s in strings]
        assert len(set(keys)) == len(keys)

    def test_key_string_readable(self):
        text = grouped_key_string(parse_ipa("na"), mode="full")
        assert "." in text


class TestSoundex:
    @pytest.mark.parametrize(
        "name,code",
        [
            ("Robert", "R163"),
            ("Rupert", "R163"),
            ("Ashcraft", "A261"),
            ("Tymczak", "T522"),
            ("Pfister", "P236"),
            ("Jackson", "J250"),
            ("Washington", "W252"),
        ],
    )
    def test_knuth_examples(self, name, code):
        assert soundex(name) == code

    def test_case_insensitive(self):
        assert soundex("nehru") == soundex("NEHRU")

    def test_short_names_padded(self):
        assert len(soundex("Lee")) == 4

    def test_non_latin_returns_empty(self):
        assert soundex("नेहरु") == ""


class TestFolding:
    def test_length_folds(self):
        assert fold_symbol("aː") == "a"
        assert fold_symbol("iː") == "i"

    def test_dental_folds(self):
        assert fold_symbol("t̪") == "t"
        assert fold_symbol("d̪ʱ") == "dʱ"

    def test_rhotics_fold_to_r(self):
        for sym in ["ɹ", "ɾ", "ɽ", "ɻ"]:
            assert fold_symbol(sym) == "r"

    def test_laterals_fold_to_l(self):
        for sym in ["ɭ", "ɫ", "ʎ"]:
            assert fold_symbol(sym) == "l"

    def test_lax_vowels_fold(self):
        assert fold_symbol("ɪ") == "i"
        assert fold_symbol("ʊ") == "u"
        assert fold_symbol("ɜ") == "ə"

    def test_aspiration_survives_folding(self):
        assert fold_symbol("t̪ʰ") == "tʰ"
        assert fold_symbol("ɖʱ") == "ɖʱ"

    def test_retroflex_flap_aspiration_dropped_with_r(self):
        assert fold_symbol("ɽʱ") == "r"

    def test_fold_phonemes_preserves_length(self):
        phonemes = parse_ipa("n̪eːɾʋaːɳ")
        folded = fold_phonemes(phonemes)
        assert len(folded) == len(phonemes)

    def test_folded_output_is_valid(self):
        from repro.phonetics.parse import validate_phoneme_string

        validate_phoneme_string(fold_phonemes(parse_ipa("ẽɦɽʱʂt̪ʰɪʊœø")))

    def test_folding_idempotent(self):
        phonemes = parse_ipa("dʒəʋaːɦərlaːl")
        once = fold_phonemes(phonemes)
        assert fold_phonemes(once) == once
