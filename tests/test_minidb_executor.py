"""Tests for physical operators and expression evaluation."""

import pytest

from repro.errors import PlanningError
from repro.minidb.catalog import Database
from repro.minidb.executor import (
    Distinct,
    Filter,
    GroupBy,
    HashJoin,
    IndexEqualScan,
    IndexNestedLoopJoin,
    IndexRangeScan,
    Limit,
    NestedLoopJoin,
    Project,
    SeqScan,
    Sort,
)
from repro.minidb.expr import (
    Aggregate,
    BinaryOp,
    ColumnRef,
    Literal,
    RowLayout,
    compile_expr,
)
from repro.minidb.schema import Column
from repro.minidb.values import SqlType


@pytest.fixture()
def db() -> Database:
    db = Database()
    db.create_table(
        "people",
        [
            Column("id", SqlType.INTEGER),
            Column("name", SqlType.TEXT),
            Column("age", SqlType.INTEGER),
            Column("city", SqlType.TEXT),
        ],
    )
    rows = [
        (1, "Asha", 30, "Bangalore"),
        (2, "Bob", 25, "Boston"),
        (3, "Chen", 35, "Boston"),
        (4, "Devi", 28, "Bangalore"),
        (5, "Emil", 25, None),
    ]
    for row in rows:
        db.insert("people", row)
    db.create_index("idx_city", "people", "city")
    db.create_index("idx_age", "people", "age")
    return db


def col(table, name):
    return ColumnRef(table, name)


class TestScans:
    def test_seq_scan(self, db):
        scan = SeqScan(db.table("people"), "p")
        assert len(list(scan.rows())) == 5
        assert scan.layout.names[0] == "p.id"

    def test_seq_scan_reiterable(self, db):
        scan = SeqScan(db.table("people"))
        assert len(list(scan.rows())) == len(list(scan.rows()))

    def test_index_equal_scan(self, db):
        scan = IndexEqualScan(
            db.table("people"), db.index("idx_city").tree, "Boston"
        )
        names = sorted(row[1] for row in scan.rows())
        assert names == ["Bob", "Chen"]

    def test_index_range_scan(self, db):
        scan = IndexRangeScan(
            db.table("people"), db.index("idx_age").tree, 25, 30
        )
        ages = [row[2] for row in scan.rows()]
        assert ages == sorted(ages)
        assert set(ages) == {25, 28, 30}


class TestFilterProject:
    def test_filter(self, db):
        scan = SeqScan(db.table("people"), "p")
        predicate = BinaryOp(">", col("p", "age"), Literal(27))
        out = list(Filter(scan, predicate, db.udf).rows())
        assert {row[1] for row in out} == {"Asha", "Chen", "Devi"}

    def test_filter_null_is_not_true(self, db):
        scan = SeqScan(db.table("people"), "p")
        predicate = BinaryOp("=", col("p", "city"), Literal("Boston"))
        out = list(Filter(scan, predicate, db.udf).rows())
        # Emil has NULL city: excluded, not an error
        assert {row[1] for row in out} == {"Bob", "Chen"}

    def test_project_expressions(self, db):
        scan = SeqScan(db.table("people"), "p")
        out = Project(
            scan,
            [
                (col("p", "name"), "name"),
                (
                    BinaryOp("*", col("p", "age"), Literal(2)),
                    "double_age",
                ),
            ],
            db.udf,
        )
        rows = list(out.rows())
        assert rows[0] == ("Asha", 60)
        assert out.layout.names == ["q.name", "q.double_age"]


class TestJoins:
    def test_nested_loop_cross_product(self, db):
        left = SeqScan(db.table("people"), "a")
        right = SeqScan(db.table("people"), "b")
        join = NestedLoopJoin(left, right)
        assert len(list(join.rows())) == 25

    def test_nested_loop_with_predicate(self, db):
        left = SeqScan(db.table("people"), "a")
        right = SeqScan(db.table("people"), "b")
        predicate = BinaryOp("<", col("a", "id"), col("b", "id"))
        join = NestedLoopJoin(left, right, predicate, db.udf)
        assert len(list(join.rows())) == 10

    def test_hash_join(self, db):
        left = SeqScan(db.table("people"), "a")
        right = SeqScan(db.table("people"), "b")
        lkey = compile_expr(col("a", "city"), left.layout, db.udf)
        rkey = compile_expr(col("b", "city"), right.layout, db.udf)
        join = HashJoin(left, right, lkey, rkey)
        rows = list(join.rows())
        # Boston pair 2x2 + Bangalore 2x2; NULL city never joins
        assert len(rows) == 8

    def test_index_nested_loop_join(self, db):
        outer = SeqScan(db.table("people"), "a")
        pos = outer.layout.position(col("a", "city"))
        join = IndexNestedLoopJoin(
            outer,
            db.table("people"),
            db.index("idx_city").tree,
            outer_key=lambda row: row[pos],
            inner_alias="b",
        )
        rows = list(join.rows())
        assert len(rows) == 8  # NULL outer keys skipped


class TestGroupBy:
    def test_count_sum_avg_min_max(self, db):
        scan = SeqScan(db.table("people"), "p")
        aggs = [
            Aggregate("COUNT", None),
            Aggregate("SUM", col("p", "age")),
            Aggregate("AVG", col("p", "age")),
            Aggregate("MIN", col("p", "age")),
            Aggregate("MAX", col("p", "age")),
        ]
        group = GroupBy(scan, [col("p", "city")], aggs, db.udf)
        result = {row[0]: row[1:] for row in group.rows()}
        assert result["Boston"] == (2, 60, 30.0, 25, 35)
        assert result["Bangalore"] == (2, 58, 29.0, 28, 30)
        assert None in result

    def test_count_expr_skips_nulls(self, db):
        scan = SeqScan(db.table("people"), "p")
        group = GroupBy(
            scan, [], [Aggregate("COUNT", col("p", "city"))], db.udf
        )
        assert list(group.rows()) == [(4,)]

    def test_global_aggregate_over_empty_input(self, db):
        scan = SeqScan(db.table("people"), "p")
        empty = Filter(
            scan, BinaryOp("=", col("p", "id"), Literal(-1)), db.udf
        )
        group = GroupBy(
            empty,
            [],
            [Aggregate("COUNT", None), Aggregate("SUM", col("p", "age"))],
            db.udf,
        )
        assert list(group.rows()) == [(0, None)]


class TestSortLimitDistinct:
    def test_sort_asc_desc(self, db):
        scan = SeqScan(db.table("people"), "p")
        out = Sort(scan, [(col("p", "age"), False)], db.udf)
        ages = [row[2] for row in out.rows()]
        assert ages == sorted(ages)
        out = Sort(scan, [(col("p", "age"), True)], db.udf)
        ages = [row[2] for row in out.rows()]
        assert ages == sorted(ages, reverse=True)

    def test_sort_nulls_first_ascending(self, db):
        scan = SeqScan(db.table("people"), "p")
        out = Sort(scan, [(col("p", "city"), False)], db.udf)
        cities = [row[3] for row in out.rows()]
        assert cities[0] is None

    def test_multi_key_sort_stable(self, db):
        scan = SeqScan(db.table("people"), "p")
        out = Sort(
            scan,
            [(col("p", "age"), False), (col("p", "name"), False)],
            db.udf,
        )
        rows = list(out.rows())
        assert [r[1] for r in rows][:2] == ["Bob", "Emil"]  # both age 25

    def test_limit(self, db):
        scan = SeqScan(db.table("people"), "p")
        assert len(list(Limit(scan, 2).rows())) == 2
        assert len(list(Limit(scan, 0).rows())) == 0

    def test_distinct(self, db):
        scan = SeqScan(db.table("people"), "p")
        cities = Project(scan, [(col("p", "city"), "city")], db.udf)
        assert len(list(Distinct(cities).rows())) == 3


class TestRowLayout:
    def test_ambiguous_unqualified_reference(self):
        layout = RowLayout.for_table("a", ["id", "name"]).merge(
            RowLayout.for_table("b", ["id", "qty"])
        )
        with pytest.raises(PlanningError):
            layout.position(ColumnRef(None, "id"))
        assert layout.position(ColumnRef(None, "qty")) == 3
        assert layout.position(ColumnRef("a", "id")) == 0
        assert layout.position(ColumnRef("b", "id")) == 2

    def test_unknown_reference(self):
        layout = RowLayout.for_table("a", ["id"])
        with pytest.raises(PlanningError):
            layout.position(ColumnRef("a", "missing"))
        with pytest.raises(PlanningError):
            layout.position(ColumnRef("z", "id"))
