"""Unit tests for the fault-injection failpoint registry (repro.faults)."""

import os
import subprocess
import sys
import time

import pytest

from repro import deadline, faults
from repro.errors import (
    DeadlineExceededError,
    FaultInjectedError,
    TTPError,
)
from repro.faults import FaultRegistry, parse_spec
from repro.matching.editdist import edit_distance_within


@pytest.fixture(autouse=True)
def _clean_global_registry():
    faults.reset()
    yield
    faults.reset()


class TestRegistryModes:
    def test_unconfigured_fire_is_false(self):
        reg = FaultRegistry()
        assert reg.fire("nope") is False
        assert reg.active is False

    def test_always_fires_when_configured(self):
        reg = FaultRegistry()
        reg.configure("point")
        assert reg.active is True
        assert reg.fire("point") is True
        assert reg.fire("other") is False

    def test_probability_zero_never_fires(self):
        reg = FaultRegistry()
        reg.configure("point", probability=0.0)
        assert not any(reg.fire("point") for _ in range(200))

    def test_probability_is_deterministic_under_seed(self):
        def schedule():
            reg = FaultRegistry()
            reg.seed(2004)
            reg.configure("point", probability=0.3)
            return [reg.fire("point") for _ in range(100)]

        first, second = schedule(), schedule()
        assert first == second
        assert 5 <= sum(first) <= 60  # p=0.3 over 100 draws

    def test_n_shot_limits_fires(self):
        reg = FaultRegistry()
        reg.configure("point", count=3)
        fired = [reg.fire("point") for _ in range(10)]
        assert fired == [True] * 3 + [False] * 7
        info = reg.describe()["point"]
        assert info["hits"] == 10
        assert info["fires"] == 3
        assert info["remaining"] == 0

    def test_error_kinds_raise(self):
        reg = FaultRegistry()
        reg.configure("point", error="fault")
        with pytest.raises(FaultInjectedError):
            reg.fire("point")
        reg.configure("point", error="conn")
        with pytest.raises(ConnectionResetError):
            reg.fire("point")
        reg.configure("point", error="internal")
        with pytest.raises(RuntimeError):
            reg.fire("point")

    def test_ttp_error_carries_language(self):
        reg = FaultRegistry()
        reg.configure("point", error="ttp")
        with pytest.raises(TTPError) as err:
            reg.fire("point", language="hindi")
        assert err.value.language == "hindi"

    def test_language_filter(self):
        reg = FaultRegistry()
        reg.configure("point", error="ttp", languages=("hindi", "tamil"))
        assert reg.fire("point", language="english") is False
        assert reg.fire("point") is False  # no language at the site
        with pytest.raises(TTPError):
            reg.fire("point", language="Hindi")  # case-insensitive

    def test_latency_mode_sleeps(self):
        reg = FaultRegistry()
        reg.configure("point", latency=0.05)
        started = time.perf_counter()
        assert reg.fire("point") is True
        assert time.perf_counter() - started >= 0.045

    def test_disable_and_reset(self):
        reg = FaultRegistry()
        reg.configure("a")
        reg.configure("b")
        reg.disable("a")
        assert reg.fire("a") is False
        assert reg.fire("b") is True
        assert reg.active is True
        reg.reset()
        assert reg.active is False
        assert reg.describe() == {}

    def test_validation_errors(self):
        reg = FaultRegistry()
        with pytest.raises(ValueError):
            reg.configure("p", probability=1.5)
        with pytest.raises(ValueError):
            reg.configure("p", latency=-1)
        with pytest.raises(ValueError):
            reg.configure("p", error="no-such-kind")
        with pytest.raises(ValueError):
            reg.configure("p", count=0)


class TestParseSpec:
    def test_full_grammar(self):
        reg = FaultRegistry()
        parse_spec(
            "server.conn.drop_write:p=0.1;"
            "ttp.transform:error=ttp,p=0.05,langs=hindi|tamil;"
            "pool.admit:count=2,latency=0.01",
            reg,
        )
        info = reg.describe()
        assert info["server.conn.drop_write"]["probability"] == 0.1
        assert info["ttp.transform"]["error"] == "ttp"
        assert info["ttp.transform"]["languages"] == ["hindi", "tamil"]
        assert info["pool.admit"]["remaining"] == 2
        assert info["pool.admit"]["latency"] == 0.01

    def test_bare_name_always_fires(self):
        reg = FaultRegistry()
        parse_spec("point", reg)
        assert reg.fire("point") is True

    def test_malformed_specs_rejected(self):
        reg = FaultRegistry()
        with pytest.raises(ValueError):
            parse_spec(":p=0.5", reg)
        with pytest.raises(ValueError):
            parse_spec("point:junk", reg)
        with pytest.raises(ValueError):
            parse_spec("point:frob=1", reg)


class TestSuppression:
    def test_suppressed_scope_masks_and_restores(self):
        faults.configure("point", error="fault")
        with faults.suppressed():
            assert faults.is_active() is False
            assert faults.fire("point") is False
        assert faults.is_active() is True
        with pytest.raises(FaultInjectedError):
            faults.fire("point")

    def test_demo_catalog_builds_under_p1_ttp_fault(self):
        # Regression: a REPRO_FAULTS schedule must break queries, not
        # server bootstrap — the demo catalog (and its phonetic index)
        # builds with failpoints suppressed.
        from repro.core.integration import demo_books_db

        faults.configure("ttp.transform", error="ttp")
        db = demo_books_db("qgram")
        assert len(db.table("books")) == 6


class TestEnvActivation:
    def test_repro_faults_env_configures_at_import(self):
        code = (
            "from repro import faults; "
            "info = faults.describe(); "
            "print(faults.is_active(), "
            "info['point']['probability'], "
            "info['other']['error'])"
        )
        env = dict(os.environ)
        env["REPRO_FAULTS"] = "point:p=0.25;other:error=conn"
        env["REPRO_FAULTS_SEED"] = "7"
        env["PYTHONPATH"] = "src"
        out = subprocess.run(
            [sys.executable, "-c", code],
            env=env,
            capture_output=True,
            text=True,
            check=True,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        )
        assert out.stdout.strip() == "True 0.25 conn"


class TestGlobalRegistry:
    def test_module_level_wrappers(self):
        assert faults.is_active() is False
        assert faults.fire("point") is False
        faults.configure("point", count=1)
        assert faults.is_active() is True
        assert faults.fire("point") is True
        assert faults.fire("point") is False
        assert faults.describe()["point"]["fires"] == 1
        faults.disable("point")
        assert faults.is_active() is False


class TestDeadlineScope:
    def test_no_deadline_is_a_noop(self):
        with deadline.deadline_scope(None):
            assert deadline.current() is None
            assert deadline.expired() is False
            deadline.check()  # must not raise

    def test_expired_deadline_raises_on_check(self):
        with deadline.deadline_scope(-0.001):
            assert deadline.expired() is True
            with pytest.raises(DeadlineExceededError):
                deadline.check("unit test")

    def test_nested_scope_keeps_tighter_deadline(self):
        with deadline.deadline_scope(10.0):
            outer = deadline.current()
            with deadline.deadline_scope(100.0):
                assert deadline.current() == outer  # inner cannot loosen
            with deadline.deadline_scope(0.001):
                assert deadline.current() < outer
            assert deadline.current() == outer
        assert deadline.current() is None

    def test_dp_matching_cancels_cooperatively(self):
        left = tuple("nehru" * 20)
        right = tuple("nehrunehru" * 10)
        with deadline.deadline_scope(-0.001):
            with pytest.raises(DeadlineExceededError):
                edit_distance_within(left, right, 1000.0)
        # Outside the scope the same call completes normally.
        assert edit_distance_within(left, right, 1000.0) is not None
