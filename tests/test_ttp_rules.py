"""Unit tests for the NRL-style G2P rule engine's pattern language."""

import pytest

from repro.errors import TTPError
from repro.ttp.rules import Rule, apply_rules, compile_rules


def engine(rows):
    return compile_rules(rows)


class TestContextPatterns:
    def test_literal_contexts(self):
        index = engine([
            ("x", "a", "y", "i"),
            ("", "a", "", "a"),
            ("", "x", "", "s"),
            ("", "y", "", "j"),
        ])
        assert apply_rules("xay", index, "t") == ("s", "i", "j")
        assert apply_rules("a", index, "t") == ("a",)

    def test_word_boundaries(self):
        index = engine([
            (" ", "a", "", "æ"),   # word-initial
            ("", "a", " ", "ɑ"),   # word-final
            ("", "a", "", "ə"),
            ("", "b", "", "b"),
        ])
        assert apply_rules("aba", index, "t") == ("æ", "b", "ɑ")
        assert apply_rules("bab", index, "t") == ("b", "ə", "b")

    def test_one_or_more_vowels(self):
        index = engine([
            ("#", "b", "", "p"),  # b after vowels -> p
            ("", "b", "", "b"),
            ("", "a", "", "a"),
        ])
        assert apply_rules("b", index, "t") == ("b",)
        assert apply_rules("ab", index, "t") == ("a", "p")
        assert apply_rules("aab", index, "t") == ("a", "a", "p")

    def test_zero_or_more_consonants(self):
        index = engine([
            ("#:", "x", "", "z"),  # vowel, then any consonants, then x
            ("", "x", "", "s"),
            ("", "a", "", "a"),
            ("", "b", "", "b"),
        ])
        assert apply_rules("abx", index, "t")[-1] == "z"
        assert apply_rules("ax", index, "t")[-1] == "z"
        assert apply_rules("bx", index, "t")[-1] == "s"

    def test_exactly_one_consonant(self):
        index = engine([
            ("", "a", "^ ", "eɪ"),  # a + one consonant + end
            ("", "a", "", "æ"),
            ("", "t", "", "t"),
            ("", "s", "", "s"),
        ])
        assert apply_rules("at", index, "t")[0] == "e"
        assert apply_rules("ats", index, "t")[0] == "æ"

    def test_front_vowel_class(self):
        index = engine([
            ("", "c", "+", "s"),
            ("", "c", "", "k"),
            ("", "e", "", "ɛ"),
            ("", "o", "", "ɑ"),
        ])
        assert apply_rules("ce", index, "t")[0] == "s"
        assert apply_rules("co", index, "t")[0] == "k"

    def test_suffix_class(self):
        index = engine([
            ("", "a", "^%", "eɪ"),  # a + consonant + suffix (e.g. -ed)
            ("", "a", "", "æ"),
            ("", "t", "", "t"),
            ("", "d", "", "d"),
            ("", "e", "", ""),
        ])
        assert apply_rules("ated", index, "t")[0] == "e"
        assert apply_rules("atd", index, "t")[0] == "æ"

    def test_voiced_class(self):
        index = engine([
            (".", "s", " ", "z"),  # s after voiced consonant at end
            ("", "s", "", "s"),
            ("", "b", "", "b"),
            ("", "t", "", "t"),
        ])
        assert apply_rules("bs", index, "t") == ("b", "z")
        assert apply_rules("ts", index, "t") == ("t", "s")

    def test_first_matching_rule_wins(self):
        index = engine([
            ("", "ab", "", "x"),
            ("", "a", "", "a"),
            ("", "b", "", "b"),
        ])
        assert apply_rules("ab", index, "t") == ("x",)


class TestEngineErrors:
    def test_empty_fragment_rejected_at_compile(self):
        with pytest.raises(TTPError):
            compile_rules([("", "", "", "a")])

    def test_bad_ipa_rejected_at_compile(self):
        from repro.errors import PhonemeError

        with pytest.raises(PhonemeError):
            compile_rules([("", "a", "", "NOT_IPA")])

    def test_unmatched_character_raises(self):
        index = engine([("", "a", "", "a")])
        with pytest.raises(TTPError):
            apply_rules("ab", index, "t")

    def test_no_rule_matched_raises(self):
        # A group exists for 'a' but no rule fires in this context.
        index = engine([("x", "a", "", "a")])
        with pytest.raises(TTPError):
            apply_rules("a", index, "t")

    def test_rule_tuple_shape(self):
        rule = Rule("", "a", "", ("a",))
        assert rule.fragment == "a"
