"""Tests for the English grapheme-to-phoneme converter.

These pin down the *raw* converter output (no folding); registry-level
folding is covered in test_ttp_registry.py.
"""

import pytest

from repro.errors import TTPError
from repro.ttp.english import EnglishConverter


@pytest.fixture(scope="module")
def eng() -> EnglishConverter:
    return EnglishConverter()


class TestCommonWords:
    @pytest.mark.parametrize(
        "word,ipa",
        [
            ("university", "junɪvɜɹsɪti"),
            ("smith", "smɪθ"),
            ("oxygen", "ɑksɪdʒɛn"),
            ("church", "tʃɜɹtʃ"),
            ("knight", "naɪt"),
            ("phone", "foʊn"),
            ("quick", "kwɪk"),
            ("shine", "ʃaɪn"),
            ("through", "θɹu"),
            ("measure", "mɛʒɜɹ"),
        ],
    )
    def test_pronunciations(self, eng, word, ipa):
        assert eng.to_ipa(word) == ipa

    def test_silent_letters(self, eng):
        assert eng.to_ipa("knee")[0] == "n"  # silent k
        assert "h" not in eng.to_ipa("where")  # wh -> w
        assert eng.to_phonemes("wright")[0] == "ɹ"  # wr -> r

    def test_soft_and_hard_c(self, eng):
        assert eng.to_phonemes("cent")[0] == "s"
        assert eng.to_phonemes("cat")[0] == "k"

    def test_soft_and_hard_g(self, eng):
        assert eng.to_phonemes("gem")[0] == "dʒ"
        assert eng.to_phonemes("gold")[0] == "g"

    def test_doubled_consonants_collapse(self, eng):
        assert eng.to_phonemes("hammer").count("m") == 1
        assert eng.to_phonemes("jennifer").count("n") == 1


class TestNames:
    def test_rhotic_american_er(self, eng):
        # word-final -er keeps the r (American English)
        phonemes = eng.to_phonemes("fisher")
        assert phonemes[-1] == "ɹ"

    def test_exception_lexicon(self, eng):
        assert eng.to_ipa("Nehru") == "nɛhɹu"
        assert eng.to_ipa("Sean") == "ʃɔn"
        assert eng.to_ipa("Thomas")[0] == "t"

    def test_extra_exceptions(self):
        conv = EnglishConverter(extra_exceptions={"Xyz": "zaɪz"})
        assert conv.to_ipa("xyz") == "zaɪz"

    def test_case_insensitive(self, eng):
        assert eng.to_phonemes("NEHRU") == eng.to_phonemes("nehru")

    def test_accents_folded(self, eng):
        assert eng.to_phonemes("René") == eng.to_phonemes("Rene")

    def test_indic_digraph_names(self, eng):
        # word-initial Ch/Bh/Dh/Kh/Gh: no stray /h/
        assert "h" not in eng.to_phonemes("Bhavesh")
        assert "h" not in eng.to_phonemes("Dharma")
        assert "h" not in eng.to_phonemes("Khanna")
        assert "h" not in eng.to_phonemes("Ghosh")

    def test_multi_word_input(self, eng):
        combined = eng.to_phonemes("Jawaharlal Nehru")
        assert combined == eng.to_phonemes("Jawaharlal") + eng.to_phonemes(
            "Nehru"
        )


class TestTotality:
    def test_every_letter_has_fallback(self, eng):
        import string

        for letter in string.ascii_lowercase:
            assert eng.to_phonemes(letter * 3) is not None

    def test_name_lists_fully_convertible(self, eng):
        from repro.data.names_american import AMERICAN_NAMES
        from repro.data.names_generic import GENERIC_NAMES
        from repro.data.names_indian import INDIAN_NAMES

        for name in INDIAN_NAMES + AMERICAN_NAMES + GENERIC_NAMES:
            phonemes = eng.to_phonemes(name)
            assert phonemes, name

    def test_digits_rejected(self, eng):
        with pytest.raises(TTPError):
            eng.to_phonemes("route66")

    def test_empty_after_normalization(self, eng):
        assert eng.to_phonemes("-") == ()
