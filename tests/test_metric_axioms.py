"""The Clustered Edit Distance must be a true metric over the inventory.

The BK metric tree (`repro.matching.bktree`) prunes by the triangle
inequality, so its exactness rests on the cost model satisfying the
classical sufficient conditions for a sequence edit distance to be a
metric:

1. symbol substitution costs form a (pseudo)metric: symmetric, zero on
   the diagonal, triangle inequality;
2. insertion and deletion cost the same for each symbol;
3. substituting never costs more than deleting plus inserting.

These are checked exhaustively over the whole phoneme inventory (numpy
broadcasting keeps the O(n^3) triangle check fast) for every cost
configuration the library ships.
"""

import numpy as np
import pytest

from repro.matching.batch import EncodedCosts
from repro.matching.costs import ClusteredCost, LevenshteinCost
from repro.phonetics.inventory import INVENTORY

ALL_SYMBOLS = tuple(sorted(INVENTORY))

CONFIGS = [
    LevenshteinCost(),
    ClusteredCost(0.25),
    ClusteredCost(0.5),
    ClusteredCost(1.0),
    ClusteredCost(0.25, weak_indel_cost=1.0, vowel_cross_cost=1.0),
    ClusteredCost(0.5, weak_indel_cost=0.5, vowel_cross_cost=0.75),
]


@pytest.mark.parametrize("costs", CONFIGS, ids=lambda c: repr(c)[:40])
class TestMetricAxioms:
    def test_substitution_symmetric_and_zero_diagonal(self, costs):
        encoded = EncodedCosts(costs, ALL_SYMBOLS)
        sub = encoded.sub
        assert np.allclose(sub, sub.T)
        assert np.allclose(np.diag(sub), 0.0)
        # Distinct symbols are at strictly positive distance except when
        # the model deliberately makes them free (intra cost 0).
        if costs.min_op_cost() > 0 and getattr(
            costs, "intra_cluster_cost", 1.0
        ) > 0:
            off_diag = sub + np.eye(len(sub))
            assert (off_diag > 0).all()

    def test_substitution_triangle_inequality(self, costs):
        encoded = EncodedCosts(costs, ALL_SYMBOLS)
        sub = encoded.sub
        # min over k of sub[a,k] + sub[k,b] must never beat sub[a,b].
        best_via = np.full_like(sub, np.inf)
        for k in range(sub.shape[0]):
            np.minimum(
                best_via, sub[:, k : k + 1] + sub[k : k + 1, :], out=best_via
            )
        assert (sub <= best_via + 1e-12).all()

    def test_insert_equals_delete(self, costs):
        encoded = EncodedCosts(costs, ALL_SYMBOLS)
        assert np.allclose(encoded.ins, encoded.dele)

    def test_substitute_never_beats_indel_pair(self, costs):
        encoded = EncodedCosts(costs, ALL_SYMBOLS)
        bound = encoded.dele[:, None] + encoded.ins[None, :]
        assert (encoded.sub <= bound + 1e-12).all()
