"""Tests for ``repro.parallel``: table, executor, strategy, snapshot.

The load-bearing invariant is *exactness*: the sharded executor (inline
or across a process pool) and :class:`ParallelStrategy` must return the
same match sets as :class:`NaiveUdfStrategy`, which is the reference
semantics.  The golden snapshot class pins the cross-strategy agreement
to concrete id sets on the seeded bundled lexicon, so a regression in
any one strategy (or in the lexicon build) fails loudly rather than
letting the equality checks drift together.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro import deadline
from repro.core import (
    LexEqualMatcher,
    MatchConfig,
    NaiveUdfStrategy,
    NameCatalog,
    PhoneticIndexStrategy,
    QGramStrategy,
)
from repro.core.strategies import MetricIndexStrategy
from repro.errors import DeadlineExceededError
from repro.matching.costs import ClusteredCost
from repro.parallel import (
    EncodedNameTable,
    ParallelMatchExecutor,
    ParallelStrategy,
)
from repro.parallel.executor import ParallelExecutionError


ROWS = [
    (0, "english", ("n", "e", "h", "r", "u")),
    (1, "hindi", ("n", "eː", "h", "r", "u")),
    (2, "english", ("n", "e", "r", "o")),
    (3, "tamil", ("n", "eː", "r", "u")),
    (4, "english", ("s", "m", "i", "θ")),
]


def _table(costs=None) -> EncodedNameTable:
    return EncodedNameTable.from_rows(costs or ClusteredCost(0.25), ROWS)


class TestEncodedNameTable:
    def test_csr_layout_round_trips(self):
        table = _table()
        assert len(table) == len(ROWS)
        for pos, (_id, _lang, phonemes) in enumerate(ROWS):
            start, stop = table.offsets[pos], table.offsets[pos + 1]
            assert stop - start == len(phonemes) == table.lens[pos]
            expected = table.encoded.encode(phonemes)
            assert (table.codes[start:stop] == expected).all()

    def test_language_codes(self):
        table = _table()
        assert tuple(table.languages) == ("english", "hindi", "tamil")
        allowed = table.language_codes_for(("English", "TAMIL"))
        mask = np.isin(table.lang_codes, allowed)
        assert list(table.ids[mask]) == [0, 2, 3, 4]
        assert table.language_codes_for(()) is None

    def test_encode_query_unknown_symbol(self):
        table = _table()
        assert table.encode_query(("n", "e")) is not None
        assert table.encode_query(("n", "<no-such>")) is None

    def test_from_catalog_matches_from_rows(self):
        matcher = LexEqualMatcher()
        catalog = NameCatalog(matcher)
        catalog.add("Nehru", "english", ipa="nehru")
        catalog.add("Nero", "english", ipa="nero")
        table = EncodedNameTable.from_catalog(catalog)
        assert len(table) == 2
        assert list(table.ids) == [0, 1]
        assert table.encoded.costs is matcher.costs

    def test_empty_table(self):
        table = EncodedNameTable.from_rows(ClusteredCost(0.25), [])
        assert len(table) == 0


class TestParallelMatchExecutor:
    def test_inline_and_pool_agree(self):
        table = _table()
        query = ("n", "e", "h", "r", "u")
        with ParallelMatchExecutor(table, workers=1) as inline:
            with ParallelMatchExecutor(table, workers=3) as pooled:
                for threshold in (0.0, 0.25, 0.5, 1.0):
                    ids_a, d_a = inline.match(query, threshold)
                    ids_b, d_b = pooled.match(query, threshold)
                    assert list(ids_a) == list(ids_b)
                    assert list(d_a) == list(d_b)
                    assert inline.last_stats == pooled.last_stats

    def test_match_results_sorted_and_exact(self):
        from repro.matching.editdist import edit_distance

        table = _table()
        costs = table.encoded.costs
        query = ("n", "e", "r", "u")
        with ParallelMatchExecutor(table, workers=1) as ex:
            ids, dists = ex.match(query, 0.5)
        assert list(ids) == sorted(ids)
        for record_id, dist in zip(ids, dists):
            phonemes = dict(
                (rid, ph) for rid, _lang, ph in ROWS
            )[record_id]
            assert dist == edit_distance(query, phonemes, costs)
            assert dist <= 0.5 * min(len(query), len(phonemes))

    def test_language_filter(self):
        table = _table()
        query = ("n", "e", "h", "r", "u")
        with ParallelMatchExecutor(table, workers=1) as ex:
            all_ids, _ = ex.match(query, 0.5)
            eng_ids, _ = ex.match(query, 0.5, languages=("english",))
            none_ids, _ = ex.match(query, 0.5, languages=("greek",))
        assert set(eng_ids) <= set(all_ids)
        assert all(
            dict((rid, lang) for rid, lang, _ph in ROWS)[i] == "english"
            for i in eng_ids
        )
        assert len(none_ids) == 0

    def test_join_pairs_inline_and_pool_agree(self):
        table = _table()
        with ParallelMatchExecutor(table, workers=1) as inline:
            with ParallelMatchExecutor(table, workers=3) as pooled:
                for cross in (True, False):
                    a1, b1, d1 = inline.match_all_pairs(
                        0.5, cross_language_only=cross
                    )
                    a2, b2, d2 = pooled.match_all_pairs(
                        0.5, cross_language_only=cross
                    )
                    assert list(zip(a1, b1, d1)) == list(zip(a2, b2, d2))
        assert (a1 < b1).all()

    def test_join_counts_all_pairs(self):
        table = _table()
        n = len(table)
        with ParallelMatchExecutor(table, workers=1) as ex:
            ex.match_all_pairs(0.5)
            assert ex.last_stats["rows"] == n * (n - 1) // 2

    def test_select_shards_cover_table(self):
        table = _table()
        for workers in (1, 2, 3, 8):
            ex = ParallelMatchExecutor.__new__(ParallelMatchExecutor)
            ex.table = table
            ex.workers = workers
            shards = ex._select_shards()
            covered = []
            for start, stop in shards:
                assert start < stop
                covered.extend(range(start, stop))
            assert covered == list(range(len(table)))

    def test_join_shards_cover_triangle(self):
        table = _table()
        for workers in (1, 2, 4):
            ex = ParallelMatchExecutor.__new__(ParallelMatchExecutor)
            ex.table = table
            ex.workers = workers
            covered = []
            for start, stop in ex._join_shards():
                covered.extend(range(start, stop))
            assert covered == list(range(len(table) - 1))

    def test_unknown_query_symbol_raises(self):
        with ParallelMatchExecutor(_table(), workers=1) as ex:
            with pytest.raises(ParallelExecutionError):
                ex.match(("n", "<no-such>"), 0.5)

    def test_use_after_close_raises(self):
        ex = ParallelMatchExecutor(_table(), workers=1)
        ex.close()
        with pytest.raises(ParallelExecutionError):
            ex.match(("n", "e"), 0.5)
        ex.close()  # idempotent

    def test_expired_deadline_cancels(self):
        with ParallelMatchExecutor(_table(), workers=1) as ex:
            with deadline.deadline_scope(1e-4):
                time.sleep(0.01)
                with pytest.raises(DeadlineExceededError):
                    ex.match(("n", "e", "h", "r", "u"), 0.5)

    def test_empty_table_matches_nothing(self):
        table = EncodedNameTable.from_rows(ClusteredCost(0.25), [])
        with ParallelMatchExecutor(table, workers=4) as ex:
            ids, dists = ex.match(("n",), 0.5)
            assert len(ids) == 0
            a, b, d = ex.match_all_pairs(0.5)
            assert len(a) == len(b) == len(d) == 0


class TestParallelStrategy:
    @pytest.fixture(params=[1, 2])
    def strategy_pair(self, nehru_catalog, request):
        naive = NaiveUdfStrategy(nehru_catalog)
        with ParallelStrategy(
            nehru_catalog, workers=request.param
        ) as parallel:
            yield naive, parallel

    def test_select_equals_naive(self, strategy_pair):
        naive, parallel = strategy_pair
        for query in ["Nehru", "Gandhi", "Krishnan", "Smith", "Zzyzx"]:
            expected = [r.id for r in naive.select(query)]
            got = [r.id for r in parallel.select(query)]
            assert got == expected, query
            assert (
                parallel.last_stats.rows_considered
                == naive.last_stats.rows_considered
            )

    def test_select_language_restriction(self, strategy_pair):
        naive, parallel = strategy_pair
        for languages in [("hindi",), ("english", "tamil"), ("greek",)]:
            expected = [
                r.id for r in naive.select("Nehru", languages=languages)
            ]
            got = [
                r.id for r in parallel.select("Nehru", languages=languages)
            ]
            assert got == expected, languages

    def test_join_equals_naive(self, strategy_pair):
        naive, parallel = strategy_pair
        for cross in (True, False):
            expected = [
                (a.id, b.id)
                for a, b in naive.join(cross_language_only=cross)
            ]
            got = [
                (a.id, b.id)
                for a, b in parallel.join(cross_language_only=cross)
            ]
            assert got == expected
            assert (
                parallel.last_stats.rows_considered
                == naive.last_stats.rows_considered
            )

    def test_rebuilds_after_catalog_growth(self, nehru_catalog):
        with ParallelStrategy(nehru_catalog, workers=1) as parallel:
            before = {r.id for r in parallel.select("Nehru")}
            new_id = nehru_catalog.add("Neeru", "english")
            after = {r.id for r in parallel.select("Neeru")}
            assert new_id in after
            assert before <= {r.id for r in parallel.select("Nehru")}

    def test_stats_candidates_bounded_by_rows(self, strategy_pair):
        _naive, parallel = strategy_pair
        parallel.select("Nehru")
        stats = parallel.last_stats
        assert 0 < stats.candidates_after_filters <= stats.rows_considered
        assert stats.udf_calls == stats.candidates_after_filters


class TestGoldenCrossStrategySnapshot:
    """Five strategies, one seeded lexicon, pinned match sets.

    The queries were chosen so that even the (lossy) phonetic index
    agrees; the expected id sets are golden — they change only if the
    lexicon build or the matching semantics change, and such a change
    must be deliberate.
    """

    #: query -> match ids on build_lexicon(limit_per_domain=25).
    GOLDEN = {
        "Aakash": [0],
        "Abhishek": [3, 4, 5],
        "Ajay": [6, 7, 8],
        "Amar": [15, 16, 17],
        "Arun": [30, 31, 32],
        "Aaron": [45, 46, 47],
        "Alexander": [51, 52, 53],
        "Amy": [63, 64, 65],
        "Angela": [69, 70, 71],
        "Amazon": [111, 112],
        "Krishna": [],
        "Benzene": [],
    }

    @pytest.fixture(scope="class")
    def catalog(self, small_lexicon):
        catalog = NameCatalog(LexEqualMatcher())
        for entry in small_lexicon:
            catalog.add(entry.name, entry.language, entry.tag, ipa=entry.ipa)
        return catalog

    @pytest.fixture(scope="class")
    def strategies(self, catalog):
        parallel = ParallelStrategy(catalog, workers=2)
        yield [
            NaiveUdfStrategy(catalog),
            QGramStrategy(catalog),
            PhoneticIndexStrategy(catalog),
            MetricIndexStrategy(catalog),
            parallel,
        ]
        parallel.close()

    def test_selects_match_golden(self, strategies):
        for query, expected in self.GOLDEN.items():
            for strategy in strategies:
                got = [r.id for r in strategy.select(query)]
                assert got == expected, (strategy.name, query, got)

    def test_lossless_joins_agree(self, catalog):
        naive = [
            (a.id, b.id) for a, b in NaiveUdfStrategy(catalog).join()
        ]
        qgram = [
            (a.id, b.id) for a, b in QGramStrategy(catalog).join()
        ]
        with ParallelStrategy(catalog, workers=2) as strategy:
            parallel = [(a.id, b.id) for a, b in strategy.join()]
        assert qgram == naive
        assert parallel == naive
        assert len(naive) > 0

    def test_classical_config_parallel_agreement(self, small_lexicon):
        config = MatchConfig(
            threshold=0.25,
            intra_cluster_cost=1.0,
            weak_indel_cost=1.0,
            vowel_cross_cost=1.0,
        )
        catalog = NameCatalog(LexEqualMatcher(config))
        for entry in small_lexicon:
            catalog.add(entry.name, entry.language, entry.tag, ipa=entry.ipa)
        naive = [
            (a.id, b.id) for a, b in NaiveUdfStrategy(catalog).join()
        ]
        with ParallelStrategy(catalog, workers=1) as strategy:
            parallel = [(a.id, b.id) for a, b in strategy.join()]
        assert parallel == naive
