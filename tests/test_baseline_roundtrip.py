"""Baseline suppression round-trip and lint exit-code taxonomy.

The round-trip exercises the full ``lint()`` flow against a fixture
tree: finding -> baseline -> suppressed -> new finding stays active ->
re-baseline -> stale entries drop out when the code is fixed.  The
exit-code tests pin the CLI contract: 0 clean, 1 findings, 2 internal
analyzer error (which can never be baselined or written into one).
"""

from __future__ import annotations

import textwrap

import pytest

from repro.analysis import (
    Finding,
    Rule,
    lint,
    load_baseline,
    save_baseline,
)
from repro.analysis.concurrency import DeadlinePolls

BAD_LOOP = """
def scan_{name}(items):
    i = 0
    while i < len(items):
        i += 1
"""

CLEAN = """
from repro import deadline

def scan_clean(items):
    i = 0
    while i < len(items):
        deadline.check("fixture")
        i += 1
"""


def write_hot(root, *funcs: str) -> None:
    source = "\n".join(
        textwrap.dedent(BAD_LOOP.format(name=name)) for name in funcs
    ) or textwrap.dedent(CLEAN)
    (root / "hot.py").write_text(source, encoding="utf-8")


def run_lint(root):
    return lint(
        root,
        rules=[DeadlinePolls(files=["hot.py"], sanctioned={})],
    )


class TestBaselineRoundTrip:
    def test_full_round_trip(self, tmp_path):
        baseline = tmp_path / ".lint-baseline.json"
        # 1. A seeded violation is active with no baseline.
        write_hot(tmp_path, "first")
        result = run_lint(tmp_path)
        assert len(result.findings) == 1
        assert result.suppressed == []

        # 2. Baselining it suppresses it on the next run.
        save_baseline(baseline, result.findings)
        result = run_lint(tmp_path)
        assert result.clean
        assert len(result.suppressed) == 1

        # 3. A new violation stays active; the old one stays suppressed.
        write_hot(tmp_path, "first", "second")
        result = run_lint(tmp_path)
        assert len(result.findings) == 1
        assert "scan_second" in result.findings[0].message
        assert len(result.suppressed) == 1

        # 4. Re-baselining everything makes the run clean again.
        save_baseline(baseline, result.findings + result.suppressed)
        result = run_lint(tmp_path)
        assert result.clean
        assert len(result.suppressed) == 2

        # 5. Fixing the code and re-baselining drops the stale entries.
        write_hot(tmp_path)
        result = run_lint(tmp_path)
        assert result.clean
        assert result.suppressed == []
        save_baseline(baseline, result.findings + result.suppressed)
        assert load_baseline(baseline) == set()


class _Exploding(Rule):
    rule_id = "LEX-T999"
    name = "exploding-cli"
    description = "always crashes (exit-code fixture)"

    def run(self, ctx):
        raise RuntimeError("kaboom")


class _OneFinding(Rule):
    rule_id = "LEX-T998"
    name = "one-finding-cli"
    description = "always fires once (exit-code fixture)"

    def run(self, ctx):
        yield self.finding("fixture.py", 1, "seeded finding")


class TestExitCodes:
    def test_internal_error_cannot_be_baselined(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        crash = Finding(
            "LEX-T999",
            "<analysis>",
            0,
            "analyzer exploding-cli crashed: RuntimeError: kaboom",
        )
        save_baseline(baseline, [crash])
        result = lint(
            tmp_path, rules=[_Exploding()], baseline_path=baseline
        )
        assert not result.clean
        assert len(result.internal_errors) == 1
        assert result.suppressed == []

    @pytest.fixture()
    def patched_rules(self, monkeypatch):
        def patch(rules):
            from repro.analysis import runner

            monkeypatch.setattr(
                runner, "default_rules", lambda: list(rules)
            )

        return patch

    def test_cli_exit_0_clean(self, patched_rules, capsys):
        from repro.cli import main

        patched_rules([])
        assert main(["lint"]) == 0
        capsys.readouterr()

    def test_cli_exit_1_on_findings(self, patched_rules, capsys):
        from repro.cli import main

        patched_rules([_OneFinding()])
        assert main(["lint"]) == 1
        assert "seeded finding" in capsys.readouterr().out

    def test_cli_exit_2_on_analyzer_crash(self, patched_rules, capsys):
        from repro.cli import main

        patched_rules([_Exploding()])
        assert main(["lint"]) == 2
        err = capsys.readouterr().err
        assert "internal error" in err
        assert "kaboom" in err

    def test_cli_refuses_baseline_of_crash(
        self, patched_rules, tmp_path, capsys
    ):
        from repro.cli import main

        patched_rules([_Exploding()])
        baseline = tmp_path / "baseline.json"
        code = main(["lint", "--write-baseline", "--baseline", str(baseline)])
        assert code == 2
        assert not baseline.exists()
        capsys.readouterr()

    def test_cli_concurrency_flag_selects_lexc_rules(self, capsys):
        from repro.cli import main

        assert main(["lint", "--concurrency", "--format", "json"]) == 0
        out = capsys.readouterr().out
        import json

        doc = json.loads(out)
        ids = {rule["id"] for rule in doc["rules"]}
        assert ids == {
            "LEX-C001",
            "LEX-C002",
            "LEX-C003",
            "LEX-C004",
            "LEX-C005",
        }
