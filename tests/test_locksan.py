"""Tests for the runtime lock-order sanitizer (repro.analysis.sanitizer).

Negative tests: each detection mode is seeded with a real violation and
must raise (or, for hold-across-fork, record the deferred violation and
raise at the release site).  The tracked classes are constructed
directly so the tests run identically with and without ``REPRO_LOCKSAN``
in the environment; every test consumes the violations it provokes so
the session-level locksan gate in conftest stays clean.
"""

from __future__ import annotations

import os
import threading

import pytest

from repro.analysis import sanitizer
from repro.analysis.lockspec import LockOrderSpec
from repro.analysis.sanitizer import (
    ForkSafetyViolation,
    LockOrderViolation,
    LockOwnershipViolation,
    TrackedLock,
    TrackedRLock,
)
from repro.locks import make_lock, make_rlock, sanitizer_enabled

#: A spec with no ranked locks: pairs fall back to first-observed order.
UNRANKED = LockOrderSpec(
    ranks={},
    class_attrs={},
    module_vars={},
    attr_aliases={},
    excluded_files={},
)


@pytest.fixture(autouse=True)
def _clean_sanitizer():
    sanitizer.reset()
    yield
    sanitizer.take_violations()
    sanitizer.reset()


class TestFactory:
    def test_plain_locks_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_LOCKSAN", raising=False)
        assert not sanitizer_enabled()
        assert not isinstance(make_lock("fix.plain"), TrackedLock)
        assert not isinstance(make_rlock("fix.plain"), TrackedRLock)

    def test_tracked_locks_under_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOCKSAN", "1")
        assert sanitizer_enabled()
        lock = make_lock("fix.tracked")
        rlock = make_rlock("fix.tracked.r")
        assert isinstance(lock, TrackedLock)
        assert isinstance(rlock, TrackedRLock)
        assert lock.name == "fix.tracked"
        assert rlock.name == "fix.tracked.r"

    def test_env_zero_means_disabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOCKSAN", "0")
        assert not sanitizer_enabled()


class TestLockOrder:
    def test_rank_inversion_raises(self):
        backend = TrackedLock("storage.backend")
        catalog = TrackedLock("minidb.catalog.write")
        with backend:
            with pytest.raises(LockOrderViolation, match="rank"):
                catalog.acquire()
        assert sanitizer.held_locks() == []

    def test_sanctioned_order_passes_and_records_the_edge(self):
        backend = TrackedLock("storage.backend")
        catalog = TrackedLock("minidb.catalog.write")
        with catalog:
            with backend:
                assert sanitizer.held_locks() == [
                    "minidb.catalog.write",
                    "storage.backend",
                ]
        edges = sanitizer.observed_edges()
        assert "storage.backend" in edges["minidb.catalog.write"]

    def test_first_observed_order_governs_unranked_pairs(self):
        x = TrackedLock("fix.x", UNRANKED)
        y = TrackedLock("fix.y", UNRANKED)
        with x:
            with y:
                pass  # establishes x -> y
        with y:
            with pytest.raises(
                LockOrderViolation, match="opposite order"
            ):
                x.acquire()

    def test_nonblocking_acquire_is_not_order_checked(self):
        # A try-lock cannot deadlock, so an inverted non-blocking
        # acquire is deliberately tolerated.
        backend = TrackedLock("storage.backend")
        catalog = TrackedLock("minidb.catalog.write")
        with backend:
            assert catalog.acquire(blocking=False)
            catalog.release()

    def test_rlock_reentrancy_is_not_an_inversion(self):
        catalog = TrackedRLock("minidb.catalog.write")
        backend = TrackedRLock("storage.backend")
        with catalog:
            with backend:
                with catalog:  # reentrant: depth, not a new nesting
                    pass
            assert sanitizer.held_locks() == ["minidb.catalog.write"]
        assert sanitizer.held_locks() == []


class TestOwnership:
    def test_release_from_another_thread_raises(self):
        lock = TrackedLock("fix.owned", UNRANKED)
        lock.acquire()
        caught: list[BaseException] = []

        def rogue():
            try:
                lock.release()
            except BaseException as exc:  # noqa: BLE001 - assertion target
                caught.append(exc)

        thread = threading.Thread(target=rogue)
        thread.start()
        thread.join()
        assert len(caught) == 1
        assert isinstance(caught[0], LockOwnershipViolation)
        lock.release()  # still owned by this thread


@pytest.mark.skipif(
    not hasattr(os, "fork"), reason="fork not available"
)
class TestForkSafety:
    def test_hold_across_fork_is_deferred_then_raised(self):
        lock = TrackedLock("fix.forked", UNRANKED)
        lock.acquire()
        pid = os.fork()
        if pid == 0:  # pragma: no cover - child exits immediately
            os._exit(0)
        os.waitpid(pid, 0)
        # CPython swallows exceptions in at-fork hooks, so the parent
        # sees a deferred record plus a raise at the release site.
        recorded = sanitizer.violations()
        assert any("fix.forked" in message for message in recorded)
        with pytest.raises(ForkSafetyViolation, match="fix.forked"):
            lock.release()
        assert "fix.forked" in sanitizer.take_violations()[0]

    def test_fork_with_nothing_held_is_clean(self):
        lock = TrackedLock("fix.idle", UNRANKED)
        with lock:
            pass
        pid = os.fork()
        if pid == 0:  # pragma: no cover - child exits immediately
            os._exit(0)
        os.waitpid(pid, 0)
        assert sanitizer.violations() == []
