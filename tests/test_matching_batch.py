"""Tests for the vectorized batch edit distance."""

import numpy as np
import pytest

from repro.matching.batch import (
    EncodedCosts,
    batch_edit_distances,
    pairwise_distance_matrix,
)
from repro.matching.costs import ClusteredCost, LevenshteinCost
from repro.matching.editdist import edit_distance

SYMBOLS = ["p", "b", "t", "d", "h", "ə", "a", "i", "u", "m", "n", "r", "eː"]


class TestEncodedCosts:
    def test_tables_match_model(self):
        costs = ClusteredCost(0.25)
        encoded = EncodedCosts(costs, SYMBOLS)
        for a in SYMBOLS:
            for b in SYMBOLS:
                ia, ib = encoded.index[a], encoded.index[b]
                assert encoded.sub[ia, ib] == costs.substitute(a, b)
            assert encoded.ins[encoded.index[a]] == costs.insert(a)
            assert encoded.dele[encoded.index[a]] == costs.delete(a)

    def test_encode_roundtrip(self):
        encoded = EncodedCosts(LevenshteinCost(), SYMBOLS)
        vec = encoded.encode(("p", "a", "eː"))
        assert list(vec) == [
            encoded.index["p"],
            encoded.index["a"],
            encoded.index["eː"],
        ]


class TestBatchDistances:
    @pytest.mark.parametrize(
        "costs",
        [LevenshteinCost(), ClusteredCost(0.25), ClusteredCost(0.0)],
        ids=["unit", "clustered", "soundex"],
    )
    def test_agrees_with_scalar_dp(self, costs):
        import random

        rng = random.Random(11)
        encoded = EncodedCosts(costs, SYMBOLS)
        for _ in range(60):
            query = [rng.choice(SYMBOLS) for _ in range(rng.randint(0, 9))]
            candidates = [
                [rng.choice(SYMBOLS) for _ in range(rng.randint(0, 9))]
                for _ in range(8)
            ]
            got = batch_edit_distances(query, candidates, encoded)
            expected = [edit_distance(query, c, costs) for c in candidates]
            assert np.allclose(got, expected)

    def test_empty_query(self):
        encoded = EncodedCosts(LevenshteinCost(), SYMBOLS)
        got = batch_edit_distances((), [("p", "a"), ()], encoded)
        assert list(got) == [2.0, 0.0]

    def test_empty_candidates_list(self):
        encoded = EncodedCosts(LevenshteinCost(), SYMBOLS)
        assert len(batch_edit_distances(("p",), [], encoded)) == 0


class TestPairwiseMatrix:
    def test_symmetric_with_zero_diagonal(self):
        strings = [("p", "a"), ("b", "a"), ("m", "a", "n")]
        matrix = pairwise_distance_matrix(strings, ClusteredCost(0.25))
        assert np.allclose(matrix, matrix.T)
        assert np.allclose(np.diag(matrix), 0.0)

    def test_values_match_scalar(self):
        strings = [("p", "a"), ("b", "a"), ("m", "a", "n"), ("h", "ə")]
        costs = ClusteredCost(0.25)
        matrix = pairwise_distance_matrix(strings, costs)
        for i, a in enumerate(strings):
            for j, b in enumerate(strings):
                assert matrix[i, j] == pytest.approx(
                    edit_distance(a, b, costs)
                )
