"""Differential tests: every fast kernel against the reference DP.

The banded scalar kernel (``edit_distance_within``), the vectorized
batch kernel (``batch_edit_distances_within``) and its pre-encoded CSR
variant must return *exactly* the reference ``edit_distance``'s
distances and accept/reject decisions — not approximately: every
shipped cost value is a binary fraction (1, 0.5, 0.25, ...), so the DP
arithmetic is exact in float64 and any deviation is a kernel bug, never
rounding.

The suite drives 5 000+ seeded random phoneme pairs (lengths 0–14,
every shipped cost model, budgets from knife-edge to generous) through
all three kernels, then separately exercises the cutoff (reject) path
and the cooperative deadline-cancel path.
"""

from __future__ import annotations

import random
import time

import numpy as np
import pytest

from repro import deadline
from repro.errors import DeadlineExceededError
from repro.matching.batch import (
    EncodedCosts,
    batch_edit_distances_within,
    batch_edit_distances_within_encoded,
)
from repro.matching.costs import ClusteredCost, LevenshteinCost
from repro.matching.editdist import edit_distance, edit_distance_within

SEED = 20040314

# The same representative pool the property suite uses.
SYMBOLS = [
    "p", "b", "t", "d", "ʈ", "k", "g", "tʃ", "dʒ", "s", "z", "ʃ",
    "m", "n", "ŋ", "r", "l", "j", "w", "v", "h", "f",
    "a", "e", "i", "o", "u", "ə", "ɛ", "ɔ",
]

#: Every shipped cost-model shape: classical Levenshtein, the paper's
#: default fractional clustering, a half-cost variant with classical
#: indels, free intra-cluster substitution, and cheap weak indels.
COST_MODELS = [
    LevenshteinCost(),
    ClusteredCost(0.25),
    ClusteredCost(0.5, weak_indel_cost=1.0, vowel_cross_cost=1.0),
    ClusteredCost(0.0),
    ClusteredCost(1.0, weak_indel_cost=0.5),
]

THRESHOLDS = [0.0, 0.1, 0.25, 0.35, 0.5, 1.0]

QUERIES_PER_MODEL = 21
CANDIDATES_PER_QUERY = 48


def _random_string(rng: random.Random, max_len: int = 14) -> tuple:
    # Favor non-trivial lengths but keep empties in the mix.
    length = rng.choice([0, 1, 2] + list(range(3, max_len + 1)) * 2)
    return tuple(rng.choice(SYMBOLS) for _ in range(length))


def _battery():
    """(model, query, candidates, budgets) cases — ≥5k pairs in all."""
    rng = random.Random(SEED)
    cases = []
    for costs in COST_MODELS:
        for _ in range(QUERIES_PER_MODEL):
            query = _random_string(rng)
            candidates = [
                _random_string(rng)
                for _ in range(CANDIDATES_PER_QUERY)
            ]
            threshold = rng.choice(THRESHOLDS)
            budgets = [
                threshold * min(len(query), len(cand))
                for cand in candidates
            ]
            cases.append((costs, query, candidates, budgets))
    return cases


BATTERY = _battery()


def test_battery_covers_five_thousand_pairs():
    assert sum(len(case[2]) for case in BATTERY) >= 5000


class TestScalarBandedDifferential:
    def test_distances_and_decisions_identical(self):
        checked = 0
        for costs, query, candidates, budgets in BATTERY:
            for cand, budget in zip(candidates, budgets):
                full = edit_distance(query, cand, costs)
                banded = edit_distance_within(query, cand, budget, costs)
                if full <= budget:
                    assert banded == full, (query, cand, budget)
                else:
                    assert banded is None, (query, cand, budget, banded)
                checked += 1
        assert checked >= 5000

    def test_symmetry_of_decisions(self):
        # The banded window is asymmetric code-wise; results must not be.
        rng = random.Random(SEED + 1)
        for costs in COST_MODELS:
            for _ in range(40):
                a, b = _random_string(rng), _random_string(rng)
                budget = rng.choice(THRESHOLDS) * min(len(a), len(b))
                assert edit_distance_within(
                    a, b, budget, costs
                ) == edit_distance_within(b, a, budget, costs)

    def test_negative_budget_rejects(self):
        assert (
            edit_distance_within(("a",), ("a",), -0.5, COST_MODELS[0])
            is None
        )

    def test_zero_budget_accepts_only_identity(self):
        costs = LevenshteinCost()
        assert edit_distance_within(("a", "b"), ("a", "b"), 0.0, costs) == 0.0
        assert edit_distance_within(("a", "b"), ("a", "c"), 0.0, costs) is None


class TestBatchDifferential:
    def test_batch_identical_to_reference(self):
        checked = 0
        for costs, query, candidates, budgets in BATTERY:
            encoded = EncodedCosts(costs, SYMBOLS)
            got = batch_edit_distances_within(
                query, candidates, encoded, np.array(budgets)
            )
            for value, cand, budget in zip(got, candidates, budgets):
                full = edit_distance(query, cand, costs)
                if full <= budget:
                    assert value == full, (query, cand, budget)
                else:
                    assert value == np.inf, (query, cand, budget, value)
                checked += len(candidates)
        assert checked >= 5000

    def test_scalar_budget_broadcasts(self):
        costs, query, candidates, _ = BATTERY[0]
        encoded = EncodedCosts(costs, SYMBOLS)
        got = batch_edit_distances_within(query, candidates, encoded, 2.0)
        for value, cand in zip(got, candidates):
            full = edit_distance(query, cand, costs)
            assert (value == full) if full <= 2.0 else (value == np.inf)

    def test_encoded_rows_subset(self):
        """The CSR ``rows=`` path (what shard workers call) agrees."""
        rng = random.Random(SEED + 2)
        costs = ClusteredCost(0.25)
        encoded = EncodedCosts(costs, SYMBOLS)
        candidates = [_random_string(rng) for _ in range(60)]
        offsets = np.zeros(len(candidates) + 1, dtype=np.int64)
        for i, cand in enumerate(candidates):
            offsets[i + 1] = offsets[i] + len(cand)
        codes = np.concatenate(
            [encoded.encode(c) for c in candidates]
        ) if any(candidates) else np.empty(0, dtype=np.int64)
        query = _random_string(rng)
        rows = np.array(sorted(rng.sample(range(60), 25)))
        budgets = 0.35 * np.minimum(
            len(query), np.diff(offsets)[rows]
        )
        got = batch_edit_distances_within_encoded(
            encoded.encode(query), codes, offsets, encoded, budgets,
            rows=rows,
        )
        for value, row, budget in zip(got, rows, budgets):
            full = edit_distance(query, candidates[row], costs)
            if full <= budget:
                assert value == full
            else:
                assert value == np.inf

    def test_block_boundary_identical(self, monkeypatch):
        """Cache blocking (PADDED_BLOCK) never changes a result.

        Production blocks are 8k candidates wide; shrinking the block to
        7 forces many partial blocks (including a ragged final one) over
        the same battery case and must reproduce the unblocked output
        bit for bit.
        """
        from repro.matching import batch as batch_mod

        costs, query, candidates, budgets = BATTERY[1]
        encoded = EncodedCosts(costs, SYMBOLS)
        unblocked = batch_edit_distances_within(
            query, candidates, encoded, np.array(budgets)
        )
        monkeypatch.setattr(batch_mod, "PADDED_BLOCK", 7)
        blocked = batch_edit_distances_within(
            query, candidates, encoded, np.array(budgets)
        )
        assert np.array_equal(blocked, unblocked)

    def test_empty_candidate_list(self):
        encoded = EncodedCosts(LevenshteinCost(), SYMBOLS)
        got = batch_edit_distances_within(("a",), [], encoded, 1.0)
        assert got.shape == (0,)

    def test_empty_query_and_empty_candidates(self):
        costs = ClusteredCost(0.25)
        encoded = EncodedCosts(costs, SYMBOLS)
        candidates = [(), ("a",), ("a", "b", "e")]
        got = batch_edit_distances_within(
            (), candidates, encoded, np.array([0.0, 1.0, 1.0])
        )
        assert got[0] == 0.0
        assert got[1] == edit_distance((), ("a",), costs)
        assert got[2] == np.inf  # three insertions exceed budget 1.0


class TestAnnPrefilterDifferential:
    """The embedding prefilter against the naive scan, end to end.

    5k+ seeded (query, row) comparisons through the real strategy
    objects: the lossy default ("cost ≤ 2" admission radius) must
    return a *subset* of the naive scan's matches with measured recall
    ≥ 0.98, and with the admission radius set from the proven
    lower-bound constant (``lossless=True``) the result sets must be
    exactly equal — for both index backends.
    """

    ROWS = 640
    QUERY_COUNT = 8

    @pytest.fixture(scope="class")
    def catalog(self):
        from repro.core import LexEqualMatcher, NameCatalog
        from repro.data.generator import generate_performance_dataset
        from repro.data.lexicon import build_lexicon

        catalog = NameCatalog(LexEqualMatcher())
        items = generate_performance_dataset(build_lexicon(), self.ROWS)
        for item in items:
            catalog.add(item.name, item.language, ipa=item.ipa)
        return catalog

    @pytest.fixture(scope="class")
    def queries(self, catalog):
        rng = random.Random(SEED + 3)
        stored = [(r.name, r.language) for r in catalog.records()]
        picks = rng.sample(stored, self.QUERY_COUNT - 1)
        return picks + [("Zzyzx", "english")]  # a guaranteed miss

    @pytest.fixture(scope="class")
    def naive_results(self, catalog, queries):
        from repro.core import NaiveUdfStrategy

        naive = NaiveUdfStrategy(catalog)
        return {
            query: {r.id for r in naive.select(query, language)}
            for query, language in queries
        }

    def test_battery_covers_five_thousand_pairs(self, catalog, queries):
        assert len(catalog) * len(queries) >= 5000

    def test_lossy_subset_with_high_recall(self, catalog, queries,
                                           naive_results):
        from repro.core import AnnPrefilterStrategy

        ann = AnnPrefilterStrategy(catalog, radius_scale=2.0)
        matched = hits = 0
        for query, language in queries:
            expected = naive_results[query]
            got = {r.id for r in ann.select(query, language)}
            # Survivors are exactly verified, so anything reported must
            # be a true match: the prefilter can only *lose* matches.
            assert got <= expected, (query, sorted(got - expected))
            matched += len(expected)
            hits += len(got)
        assert matched > 0
        recall = hits / matched
        assert recall >= 0.98, f"ann recall {recall:.4f} on {matched}"

    @pytest.mark.parametrize("index_kind", ["matrix", "vptree"])
    def test_lossless_equals_naive(self, catalog, queries,
                                   naive_results, index_kind):
        from repro.core import AnnPrefilterStrategy

        ann = AnnPrefilterStrategy(
            catalog, lossless=True, index_kind=index_kind
        )
        for query, language in queries:
            got = {r.id for r in ann.select(query, language)}
            assert got == naive_results[query], (index_kind, query)


class TestDeadlineCancellation:
    """Both kernels honour an armed (and already expired) deadline."""

    LONG = tuple(SYMBOLS[i % len(SYMBOLS)] for i in range(40))
    NOISY = tuple(SYMBOLS[(i * 7 + 3) % len(SYMBOLS)] for i in range(40))

    def test_scalar_banded_cancels(self):
        with deadline.deadline_scope(1e-4):
            time.sleep(0.01)
            with pytest.raises(DeadlineExceededError):
                edit_distance_within(
                    self.LONG, self.NOISY, 40.0, LevenshteinCost()
                )

    def test_reference_dp_cancels(self):
        with deadline.deadline_scope(1e-4):
            time.sleep(0.01)
            with pytest.raises(DeadlineExceededError):
                edit_distance(self.LONG, self.NOISY, LevenshteinCost())

    def test_batch_cancels(self):
        encoded = EncodedCosts(LevenshteinCost(), SYMBOLS)
        with deadline.deadline_scope(1e-4):
            time.sleep(0.01)
            with pytest.raises(DeadlineExceededError):
                batch_edit_distances_within(
                    self.LONG, [self.NOISY] * 8, encoded, 40.0
                )

    def test_no_deadline_no_cancel(self):
        # Outside a scope the same inputs complete normally.
        got = edit_distance_within(
            self.LONG, self.NOISY, 40.0, LevenshteinCost()
        )
        assert got == edit_distance(self.LONG, self.NOISY, LevenshteinCost())
