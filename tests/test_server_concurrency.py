"""Concurrency tests: parallel clients, timeouts, backpressure, drain."""

import threading
import time

import pytest

from repro import obs
from repro.core.integration import demo_books_db
from repro.errors import RequestFailedError, ServerConnectionError
from repro.minidb.catalog import Database
from repro.minidb.schema import Column
from repro.minidb.values import SqlType
from repro.server import BackgroundServer, LexEqualClient, QueryService


@pytest.fixture(autouse=True)
def _reset_metrics():
    yield
    obs.disable()


def slow_service(delay: float = 0.4) -> QueryService:
    """A service whose ``slow(x)`` UDF sleeps: deterministic long queries."""
    db = Database()
    db.create_table("t", [Column("x", SqlType.INTEGER)])
    db.insert("t", (1,))

    def slow(x):
        time.sleep(delay)
        return x

    db.register_udf("slow", slow)
    return QueryService(db)


SLOW_SQL = "SELECT slow(x) FROM t"

LEXEQUAL_SQL = (
    "SELECT author FROM books "
    "WHERE author LEXEQUAL 'Nehru' THRESHOLD 0.25"
)
EXPECTED_AUTHORS = {"Nehru", "नेहरु", "நேரு"}


class TestConcurrentClients:
    def test_eight_clients_consistent_results(self):
        """8 parallel clients, mixed query/lexequal, zero wrong results."""
        service = QueryService(demo_books_db("qgram"))
        failures: list = []

        def worker(host, port, rounds=5):
            try:
                with LexEqualClient(host, port, timeout=60.0) as client:
                    for _ in range(rounds):
                        rows = client.query(LEXEQUAL_SQL)["rows"]
                        got = {row[0]["text"] for row in rows}
                        if got != EXPECTED_AUTHORS:
                            failures.append(("query", got))
                        outcome = client.lexequal("Nehru", "नेहरु")
                        if outcome["outcome"] != "true":
                            failures.append(("lexequal", outcome))
                        miss = client.lexequal("Nehru", "Smith")
                        if miss["outcome"] != "false":
                            failures.append(("lexequal-miss", miss))
            except Exception as exc:  # surfaced via `failures`
                failures.append(("exception", repr(exc)))

        with BackgroundServer(service, max_workers=4) as bg:
            threads = [
                threading.Thread(target=worker, args=(bg.host, bg.port))
                for _ in range(8)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120.0)
            assert not failures, failures[:3]
            with LexEqualClient(bg.host, bg.port) as client:
                stats = client.stats()
                counters = stats["metrics"]["counters"]
                # 8 clients x 5 rounds x 3 requests, plus this stats op.
                assert counters["server.requests"] >= 8 * 5 * 3
                assert counters["server.connections.opened"] >= 9

    def test_concurrent_prepared_statements_stay_per_session(self):
        service = QueryService(demo_books_db("none"))
        results: dict[int, int] = {}

        def worker(i, host, port):
            with LexEqualClient(host, port, timeout=60.0) as client:
                name = client.prepare(
                    "SELECT title FROM books WHERE price < :p",
                    name=f"mine_{i}",
                )
                results[i] = client.execute(name, {"p": 20.0})["row_count"]

        with BackgroundServer(service) as bg:
            threads = [
                threading.Thread(target=worker, args=(i, bg.host, bg.port))
                for i in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60.0)
        assert results == {0: 2, 1: 2, 2: 2, 3: 2}


class TestTimeouts:
    def test_request_timeout_fires(self):
        with BackgroundServer(
            slow_service(0.5), request_timeout=0.05
        ) as bg:
            with LexEqualClient(bg.host, bg.port) as client:
                with pytest.raises(RequestFailedError) as err:
                    client.query(SLOW_SQL)
                assert err.value.code == "timeout"
                # The connection survives a timed-out request.
                assert client.ping() == "pong"
                counters = client.stats()["metrics"]["counters"]
                assert counters["server.timeouts"] >= 1

    def test_per_request_timeout_override(self):
        with BackgroundServer(
            slow_service(0.2), request_timeout=30.0
        ) as bg:
            with LexEqualClient(bg.host, bg.port) as client:
                with pytest.raises(RequestFailedError) as err:
                    client.query(SLOW_SQL, timeout=0.05)
                assert err.value.code == "timeout"
                # timeout=0 disables the deadline entirely.
                result = client.query(SLOW_SQL, timeout=0)
                assert result["row_count"] == 1


class TestBackpressure:
    def test_overload_rejects_instead_of_hanging(self):
        with BackgroundServer(
            slow_service(0.8), max_workers=1, max_inflight=1
        ) as bg:
            first_result: list = []

            def occupant():
                with LexEqualClient(bg.host, bg.port, timeout=60.0) as c:
                    first_result.append(c.query(SLOW_SQL))

            t = threading.Thread(target=occupant)
            t.start()
            time.sleep(0.25)  # let the first request occupy the slot
            started = time.perf_counter()
            with LexEqualClient(bg.host, bg.port) as client:
                with pytest.raises(RequestFailedError) as err:
                    client.query(SLOW_SQL)
                rejected_after = time.perf_counter() - started
                assert err.value.code == "overloaded"
                # A reject is immediate, not queued behind the slow one.
                assert rejected_after < 0.5
                counters = client.stats()["metrics"]["counters"]
                assert counters["server.rejects.overloaded"] >= 1
            t.join(timeout=30.0)
            assert first_result and first_result[0]["row_count"] == 1


class TestGracefulDrain:
    def test_sigterm_equivalent_drains_inflight(self):
        """stop() waits for the in-flight request's response to be sent."""
        bg = BackgroundServer(slow_service(0.6), drain_timeout=10.0)
        bg.start()
        results: list = []
        errors: list = []

        def inflight():
            try:
                with LexEqualClient(bg.host, bg.port, timeout=60.0) as c:
                    results.append(c.query(SLOW_SQL))
            except Exception as exc:
                errors.append(repr(exc))

        t = threading.Thread(target=inflight)
        t.start()
        time.sleep(0.2)  # request is now on a worker
        bg.stop()  # graceful drain, same path as SIGTERM
        t.join(timeout=30.0)
        assert not errors, errors
        assert results and results[0]["row_count"] == 1
        # After drain the server is gone: new connections are refused.
        with pytest.raises(ServerConnectionError):
            LexEqualClient(bg.host, bg.port, timeout=2.0)

    def test_draining_rejects_new_requests(self):
        bg = BackgroundServer(slow_service(0.8), drain_timeout=10.0)
        bg.start()
        ok: list = []

        def inflight():
            with LexEqualClient(bg.host, bg.port, timeout=60.0) as c:
                ok.append(c.query(SLOW_SQL))

        # An idle second connection opened before the drain begins.
        bystander = LexEqualClient(bg.host, bg.port, timeout=60.0)
        t = threading.Thread(target=inflight)
        t.start()
        time.sleep(0.2)
        stopper = threading.Thread(target=bg.stop)
        stopper.start()
        time.sleep(0.1)  # drain has begun, first request still running
        try:
            with pytest.raises((RequestFailedError, ServerConnectionError)):
                bystander.query("SELECT x FROM t")
        finally:
            bystander.close()
            stopper.join(timeout=30.0)
            t.join(timeout=30.0)
        assert ok and ok[0]["row_count"] == 1
