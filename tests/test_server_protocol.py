"""Protocol-level tests for the query server: round trips and errors."""

import json
import socket

import pytest

from repro import obs
from repro.errors import ProtocolError, RequestFailedError
from repro.server import (
    BackgroundServer,
    LexEqualClient,
    StatementCache,
    protocol,
)


@pytest.fixture(scope="module")
def server():
    with BackgroundServer() as bg:
        yield bg
    obs.disable()  # the server enables the global registry


@pytest.fixture()
def client(server):
    with LexEqualClient(server.host, server.port, timeout=30.0) as c:
        yield c


def raw_exchange(server, payload: bytes) -> dict:
    """Send raw bytes on a fresh socket; decode the one-line response."""
    with socket.create_connection(
        (server.host, server.port), timeout=30.0
    ) as sock:
        sock.sendall(payload)
        reader = sock.makefile("rb")
        line = reader.readline()
    return json.loads(line.decode("utf-8"))


class TestRoundTrips:
    def test_ping(self, client):
        assert client.ping() == "pong"

    def test_query_select(self, client):
        result = client.query(
            "SELECT author, title FROM books "
            "WHERE author LEXEQUAL 'Nehru' THRESHOLD 0.25"
        )
        assert result["columns"] == ["author", "title"]
        assert result["row_count"] == 3
        texts = {row[0]["text"] for row in result["rows"]}
        assert texts == {"Nehru", "नेहरु", "நேரு"}

    def test_query_with_params(self, client):
        result = client.query(
            "SELECT title FROM books WHERE price < :p", {"p": 20.0}
        )
        assert result["row_count"] == 2

    def test_prepare_execute(self, client):
        name = client.prepare(
            "SELECT title FROM books WHERE price < :p"
        )
        cheap = client.execute(name, {"p": 20.0})
        pricier = client.execute(name, {"p": 100.0})
        assert cheap["row_count"] == 2
        assert pricier["row_count"] == 4

    def test_prepare_explicit_name(self, client):
        name = client.prepare("SELECT title FROM books", name="all_titles")
        assert name == "all_titles"
        assert client.execute("all_titles")["row_count"] == 6

    def test_lexequal_op(self, client):
        result = client.lexequal("Nehru", "नेहरु")
        assert result["outcome"] == "true"
        assert result["match"] is True
        assert result["left_ipa"]
        miss = client.lexequal("Nehru", "Smith")
        assert miss["outcome"] == "false"
        assert miss["match"] is False

    def test_lexequal_language_restriction(self, client):
        restricted = client.lexequal(
            "Nehru", "नेहरु", languages="english,greek"
        )
        assert restricted["outcome"] == "false"

    def test_lexequal_threshold_override(self, client):
        loose = client.lexequal("Nehru", "Nero", threshold=0.9)
        strict = client.lexequal("Nehru", "Nero", threshold=0.05)
        assert loose["outcome"] == "true"
        assert strict["outcome"] == "false"

    def test_stats_op(self, client):
        client.ping()
        stats = client.stats()
        assert stats["server"]["connections"] >= 1
        assert stats["server"]["pool"]["max_inflight"] >= 1
        assert stats["tables"]["books"] == 6
        assert stats["metrics"]["enabled"] is True
        assert stats["metrics"]["counters"]["server.requests.ping"] >= 1
        assert "statement_cache" in stats

    def test_session_isolation_of_prepared_statements(self, server, client):
        client.prepare("SELECT title FROM books", name="mine")
        with LexEqualClient(server.host, server.port) as other:
            with pytest.raises(RequestFailedError) as err:
                other.execute("mine")
            assert err.value.code == "unknown_statement"


class TestErrorResponses:
    def test_malformed_json(self, server):
        response = raw_exchange(server, b"{not json}\n")
        assert response["ok"] is False
        assert response["error"]["code"] == "parse_error"

    def test_non_object_request(self, server):
        response = raw_exchange(server, b"[1, 2, 3]\n")
        assert response["ok"] is False
        assert response["error"]["code"] == "invalid_request"

    def test_unknown_op(self, server):
        response = raw_exchange(
            server, b'{"op": "frobnicate", "id": 9}\n'
        )
        assert response["ok"] is False
        assert response["error"]["code"] == "unknown_op"
        assert response["id"] == 9

    def test_missing_field(self, server):
        response = raw_exchange(server, b'{"op": "query"}\n')
        assert response["error"]["code"] == "invalid_request"

    def test_sql_error_keeps_session_alive(self, client):
        with pytest.raises(RequestFailedError) as err:
            client.query("SELECT FROM WHERE")
        assert err.value.code == "sql_error"
        assert client.ping() == "pong"  # connection survived

    def test_unknown_table_is_sql_error(self, client):
        with pytest.raises(RequestFailedError) as err:
            client.query("SELECT x FROM nope")
        assert err.value.code == "sql_error"

    def test_blank_lines_are_skipped(self, server):
        response = raw_exchange(server, b'\n\n{"op": "ping", "id": 1}\n')
        assert response["ok"] is True
        assert response["result"] == "pong"

    def test_id_echoed_on_success(self, server):
        response = raw_exchange(server, b'{"op": "ping", "id": "abc"}\n')
        assert response["id"] == "abc"


class TestDecodeRequest:
    def test_rejects_bad_id_type(self):
        with pytest.raises(ProtocolError) as err:
            protocol.decode_request('{"op": "ping", "id": [1]}')
        assert err.value.code == "invalid_request"

    def test_rejects_missing_op(self):
        with pytest.raises(ProtocolError) as err:
            protocol.decode_request('{"sql": "SELECT 1"}')
        assert err.value.code == "invalid_request"

    def test_accepts_all_ops(self):
        for op in protocol.OPS:
            assert protocol.decode_request(
                json.dumps({"op": op})
            )["op"] == op


class TestStatementCache:
    def test_hit_returns_same_ast(self):
        cache = StatementCache(maxsize=4)
        first = cache.statement("SELECT title FROM books")
        second = cache.statement("SELECT title FROM books")
        assert first is second
        info = cache.info()
        assert info["hits"] == 1
        assert info["misses"] == 1

    def test_lru_eviction(self):
        cache = StatementCache(maxsize=2)
        a = cache.statement("SELECT a FROM t")
        cache.statement("SELECT b FROM t")
        cache.statement("SELECT c FROM t")  # evicts a
        assert cache.info()["evictions"] == 1
        assert cache.statement("SELECT a FROM t") is not a

    def test_parse_errors_propagate_uncached(self):
        from repro.errors import SQLSyntaxError

        cache = StatementCache()
        with pytest.raises(SQLSyntaxError):
            cache.statement("SELEKT nope")
        assert len(cache) == 0


class TestHealthOp:
    def test_round_trip(self, client):
        health = client.health()
        assert health["status"] == "ok"
        assert health["role"] == "server"
        assert health["uptime_seconds"] >= 0.0
        assert isinstance(health["in_flight"], int)
        # The demo server is built with the default q-gram accelerator.
        assert health["strategy"] == "qgram"
        assert health["wal_lsn"] is None  # in-memory backend: no WAL
        assert health["shard"] is None  # not a cluster shard

    def test_id_echo_and_extra_fields_ignored(self, server):
        response = raw_exchange(
            server, b'{"op": "health", "id": 42, "junk": [1, 2]}\n'
        )
        assert response["ok"] is True
        assert response["id"] == 42
        assert response["result"]["status"] == "ok"

    def test_malformed_id_rejected(self, server):
        response = raw_exchange(server, b'{"op": "health", "id": {}}\n')
        assert response["ok"] is False
        assert response["error"]["code"] == "invalid_request"

    def test_truncated_json_is_parse_error(self, server):
        response = raw_exchange(server, b'{"op": "health"\n')
        assert response["ok"] is False
        assert response["error"]["code"] == "parse_error"

    def test_health_is_declared_and_retryable(self):
        from repro.server.client import RETRYABLE_OPS

        assert "health" in protocol.OPS
        assert "health" in RETRYABLE_OPS

    def test_wal_lsn_on_persistent_backend(self, tmp_path):
        from repro.core.integration import populate_books_demo
        from repro.server import QueryService
        from repro.storage import open_database

        db = open_database(str(tmp_path / "data"), sync=False)
        populate_books_demo(db)  # WAL-logged inserts advance the LSN
        try:
            service = QueryService(db, strategy="none")
            with BackgroundServer(service) as bg:
                with LexEqualClient(bg.host, bg.port, timeout=30.0) as c:
                    health = c.health()
            assert isinstance(health["wal_lsn"], int)
            assert health["wal_lsn"] > 0
            assert health["strategy"] == "none"
        finally:
            db.storage.close()
