"""FileBackend + snapshot codec tests: round-trips, batching, recovery."""

from __future__ import annotations

import io
import json
import os

import numpy as np
import pytest

from repro import faults
from repro.core.engine import create_phonetic_accelerator
from repro.core.matcher import LexEqualMatcher
from repro.errors import StorageError
from repro.matching.bktree import BKTree
from repro.minidb.catalog import Database
from repro.minidb.schema import Column
from repro.minidb.values import SqlType
from repro.parallel.table import EncodedNameTable
from repro.storage import open_database, snapshots
from repro.storage.wal import replay as wal_replay
from repro.storage import layout


@pytest.fixture(autouse=True)
def _clean_faults():
    faults.reset()
    yield
    faults.reset()


PEOPLE = [
    Column("id", SqlType.INTEGER, nullable=False),
    Column("name", SqlType.TEXT, nullable=False),
]


def _people_db(data_dir, **kwargs) -> Database:
    db = open_database(str(data_dir), **kwargs)
    if "people" not in db.table_names():
        db.create_table("people", PEOPLE)
    return db


# -------------------------------------------------------- durability


def test_rows_survive_reopen_without_checkpoint(tmp_path):
    db = _people_db(tmp_path)
    db.insert("people", (1, "Nehru"))
    db.insert("people", (2, "Nero"))
    db.storage.close()

    db = open_database(str(tmp_path))
    assert sorted(db.table("people").rows()) == [(1, "Nehru"), (2, "Nero")]
    db.storage.close()


def test_tombstones_round_trip_through_checkpoint(tmp_path):
    db = _people_db(tmp_path)
    for i in range(5):
        db.insert("people", (i, f"Row{i}"))
    db.create_index("idx_id", "people", "id")
    db.delete_row("people", 2)
    db.checkpoint()
    # Post-checkpoint delta: one insert, one delete.
    rowid = db.insert("people", (9, "Late"))
    db.delete_row("people", 0)
    db.storage.close()

    db = open_database(str(tmp_path))
    rows = sorted(db.table("people").rows())
    assert rows == [(1, "Row1"), (3, "Row3"), (4, "Row4"), (9, "Late")]
    # Rowid fidelity: a fresh insert must not reuse a recovered slot.
    assert db.insert("people", (10, "Next")) == rowid + 1
    tree = db.index("idx_id").tree
    tree.check_invariants()
    assert tree.search(9) and not tree.search(2)
    db.storage.close()


def test_transaction_batches_into_one_commit(tmp_path):
    db = _people_db(tmp_path)
    with db.transaction():
        for i in range(10):
            db.insert("people", (i, f"Row{i}"))
    db.storage.close()

    info = wal_replay(layout.wal_path(str(tmp_path)))
    assert not info.damaged
    # create_table = 1 batch; the 10 inserts share a single commit.
    assert len(info.batches) == 2
    assert [r.op for r in info.batches[1]] == ["insert"] * 10


def test_mid_transaction_state_is_not_committed(tmp_path):
    db = _people_db(tmp_path)
    db.insert("people", (1, "Before"))
    with db.transaction():
        db.insert("people", (2, "Inside"))
        # What a crash at this instant would recover: the WAL on disk
        # has no commit marker for the in-flight batch.
        info = wal_replay(layout.wal_path(str(tmp_path)))
        committed = [
            r.args for batch in info.batches for r in batch
            if r.op == "insert"
        ]
        assert [args[2] for args in committed] == [(1, "Before")]
    db.storage.close()


def test_ddl_round_trips_without_checkpoint(tmp_path):
    db = _people_db(tmp_path)
    db.create_index("idx_id", "people", "id")
    db.insert("people", (7, "Only"))
    db.drop_index("idx_id")
    db.create_table("extra", [Column("x", SqlType.REAL, nullable=True)])
    db.drop_table("extra")
    db.storage.close()

    db = open_database(str(tmp_path))
    assert tuple(db.table_names()) == ("people",)
    assert not db.indexes_for("people")
    assert list(db.table("people").rows()) == [(7, "Only")]
    db.storage.close()


def test_checkpoint_failpoint_preserves_previous_checkpoint(tmp_path):
    db = _people_db(tmp_path)
    db.insert("people", (1, "First"))
    db.checkpoint()
    db.insert("people", (2, "Second"))
    faults.configure("storage.checkpoint", count=1)
    with pytest.raises(StorageError):
        db.checkpoint()
    # The aborted attempt must not have clobbered the good checkpoint,
    # and the WAL still carries the delta.
    db.storage.close()
    db = open_database(str(tmp_path))
    assert sorted(db.table("people").rows()) == [(1, "First"), (2, "Second")]
    db.storage.close()


def test_crash_between_checkpoint_rename_and_wal_reset(tmp_path):
    db = _people_db(tmp_path)
    for i in range(5):
        db.insert("people", (i, f"Row{i}"))
    faults.configure("storage.checkpoint.post_rename", count=1)
    with pytest.raises(StorageError):
        db.checkpoint()
    # The surviving process may keep committing: those records carry
    # LSNs above the checkpoint's high-water mark and must replay.
    db.insert("people", (5, "Row5"))
    db.storage.close()

    # New checkpoint + stale untruncated WAL: recovery must skip the
    # already-folded records instead of double-applying them (which
    # would raise a rowid-drift StorageError and brick the directory).
    db = open_database(str(tmp_path))
    assert sorted(db.table("people").rows()) == [
        (i, f"Row{i}") for i in range(6)
    ]
    db.storage.close()


def test_wal_lsns_stay_monotonic_across_reopen(tmp_path):
    db = _people_db(tmp_path)
    db.insert("people", (1, "One"))
    db.checkpoint()  # WAL resets; the file is now empty
    db.storage.close()

    # A fresh process would restart LSNs at 1 from the empty file; they
    # must be bumped past the checkpoint's high-water mark or the next
    # recovery would skip these records as "already folded in".
    db = open_database(str(tmp_path))
    db.insert("people", (2, "Two"))
    db.storage.close()

    db = open_database(str(tmp_path))
    assert sorted(db.table("people").rows()) == [(1, "One"), (2, "Two")]
    db.storage.close()


def test_concurrent_inserts_and_checkpoints_do_not_deadlock(tmp_path):
    import threading

    db = _people_db(tmp_path, sync=False)
    errors: list[Exception] = []
    done = threading.Event()

    def writer():
        try:
            for i in range(200):
                db.insert("people", (i, f"Row{i}"))
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)
        finally:
            done.set()

    def checkpointer():
        try:
            while not done.is_set():
                db.checkpoint()
            db.checkpoint()
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [
        threading.Thread(target=writer, daemon=True),
        threading.Thread(target=checkpointer, daemon=True),
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
    assert not any(t.is_alive() for t in threads), (
        "insert/checkpoint deadlocked (lock-order inversion)"
    )
    assert not errors, errors
    db.storage.close()

    db = open_database(str(tmp_path))
    assert len(list(db.table("people").rows())) == 200
    db.storage.close()


def test_drop_table_clears_stats(tmp_path):
    db = _people_db(tmp_path)
    db.insert("people", (1, "One"))
    assert db.analyze() > 0
    assert db.stats.table("people") is not None
    db.drop_table("people")
    assert db.stats.table("people") is None
    db.storage.close()

    # The persisted stats catalog must not resurrect the dropped table
    # (its row counts would skew the cost-based planner on a recreate).
    db = open_database(str(tmp_path))
    assert db.stats.table("people") is None
    db.storage.close()


def test_manifest_version_mismatch_refuses_to_open(tmp_path):
    db = _people_db(tmp_path)
    db.checkpoint()  # checkpoints (re)write the manifest
    db.storage.close()
    path = layout.manifest_path(str(tmp_path))
    manifest = json.loads(open(path).read())
    manifest["format_version"] = 99
    open(path, "w").write(json.dumps(manifest))
    with pytest.raises(StorageError, match="format v99"):
        open_database(str(tmp_path))


def test_stats_persist_across_reopen(tmp_path):
    db = _people_db(tmp_path)
    for i in range(4):
        db.insert("people", (i, f"Row{i}"))
    assert db.analyze() > 0
    before = db.stats.to_dict()
    db.storage.close()

    db = open_database(str(tmp_path))
    assert db.stats.to_dict() == before
    db.storage.close()


def test_artifact_round_trip_and_corruption(tmp_path):
    db = _people_db(tmp_path)
    payload = {"kind": "demo", "numbers": list(range(8))}
    db.storage.register_artifact("demo_art", lambda: payload)
    db.checkpoint()
    db.storage.close()

    db = open_database(str(tmp_path))
    assert db.storage.load_artifact("demo_art") == payload
    db.storage.close()

    # Corrupt the artifact file: load must fail soft (None → rebuild),
    # never return mangled data.
    art = layout.index_path(str(tmp_path), "demo_art")
    data = bytearray(open(art, "rb").read())
    data[-1] ^= 0xFF
    open(art, "wb").write(bytes(data))
    db = open_database(str(tmp_path))
    assert db.storage.load_artifact("demo_art") is None
    db.storage.close()


def test_accelerator_snapshot_differential(tmp_path):
    matcher = LexEqualMatcher()
    names = ["Nehru", "Nero", "Niru", "Karam", "Carson", "Sarala"]
    db = _people_db(tmp_path, matcher=matcher)
    acc = create_phonetic_accelerator(db, "people", "name", matcher)
    for i, name in enumerate(names):
        db.insert("people", (i, name))
    db.checkpoint()
    # Delta after the checkpoint: attach must TTP only this row.
    db.insert("people", (len(names), "Meera"))
    db.storage.close()

    reopened = open_database(str(tmp_path), matcher=matcher)
    attached = reopened.accelerator_for("people", "name")
    assert attached is not None
    for query in [*names, "Meera", "Zzz"]:
        got = attached.candidate_rowids(query, None)
        want = acc.candidate_rowids(query, None)
        assert got == want, (query, got, want)
    reopened.storage.close()


# ---------------------------------------------------- snapshot codecs


def test_snapshot_container_rejects_wrong_kind_and_damage(tmp_path):
    buf = io.BytesIO()
    snapshots.dump(buf, "btree", {"hello": 1})
    good = buf.getvalue()

    loaded = snapshots.load(io.BytesIO(good), "btree")
    assert loaded == {"hello": 1}
    with pytest.raises(StorageError, match="kind"):
        snapshots.load(io.BytesIO(good), "bktree")
    with pytest.raises(StorageError, match="magic"):
        snapshots.load(io.BytesIO(b"NOTSNAP!" + good[8:]), "btree")
    clipped = good[:-2]
    with pytest.raises(StorageError):
        snapshots.load(io.BytesIO(clipped), "btree")
    flipped = bytearray(good)
    flipped[-1] ^= 0xFF
    with pytest.raises(StorageError, match="CRC"):
        snapshots.load(io.BytesIO(bytes(flipped)), "btree")


def test_bktree_codec_differential():
    def distance(a, b):
        return abs(len(a) - len(b)) + (a[:1] != b[:1])

    tree = BKTree(distance, 0.5)
    words = ["ka", "kar", "karam", "na", "neru", "nehru", "sa", "sarala"]
    for i, word in enumerate(words):
        tree.add(tuple(word), i)

    restored = snapshots.restore_bktree(snapshots.bktree_state(tree), distance)
    assert len(restored) == len(tree)
    for probe in ["ka", "nehru", "xy"]:
        for radius in (0.0, 1.0, 2.5):
            want = sorted(tree.search(tuple(probe), radius))
            got = sorted(restored.search(tuple(probe), radius))
            assert got == want, (probe, radius)


def test_encoded_table_codec_differential():
    costs = LexEqualMatcher().costs
    rows = [
        (0, "english", ("n", "e", "h", "r", "u")),
        (1, "english", ("n", "e", "r", "o")),
        (2, "tamil", ("n", "e", "r", "u")),
    ]
    table = EncodedNameTable.from_rows(costs, rows)
    restored = snapshots.restore_encoded_table(
        snapshots.encoded_table_state(table), costs
    )
    assert np.array_equal(restored.codes, table.codes)
    assert np.array_equal(restored.offsets, table.offsets)
    assert np.array_equal(restored.ids, table.ids)
    assert np.array_equal(restored.lang_codes, table.lang_codes)
    assert restored.languages == table.languages
    query = ("n", "e", "r", "u")
    assert np.array_equal(
        restored.encode_query(query), table.encode_query(query)
    )
