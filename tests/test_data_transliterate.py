"""Tests for the transliteration channel."""

import pytest

from repro.data.transliterate import (
    adapt_english_to_indic,
    romanization_to_indic_phonemes,
    to_devanagari,
    to_tamil,
)
from repro.phonetics.parse import parse_ipa
from repro.ttp.hindi import HindiConverter
from repro.ttp.tamil import TamilConverter


class TestRomanizationReader:
    def test_basic_indic_reading(self):
        assert romanization_to_indic_phonemes("Ravi") == ("r", "ə", "ʋ", "ɪ")

    def test_aspirate_digraphs(self):
        phonemes = romanization_to_indic_phonemes("Khanna")
        assert phonemes[0] == "kʰ"
        phonemes = romanization_to_indic_phonemes("Bharat")
        assert phonemes[0] == "bʱ"

    def test_long_vowel_digraphs(self):
        assert "iː" in romanization_to_indic_phonemes("Meena")
        assert "uː" in romanization_to_indic_phonemes("Sooraj")
        assert "aː" in romanization_to_indic_phonemes("Raam")

    def test_final_a_reads_long(self):
        assert romanization_to_indic_phonemes("Rama")[-1] == "aː"

    def test_doubled_consonants_single_sound(self):
        phonemes = romanization_to_indic_phonemes("Anna")
        assert phonemes.count("n") == 1

    def test_silent_final_e(self):
        phonemes = romanization_to_indic_phonemes("Catherine")
        assert phonemes[-1] == "n"

    def test_er_reads_schwa_r(self):
        phonemes = romanization_to_indic_phonemes("Fisher")
        assert phonemes[-2:] == ("ə", "r")

    def test_c_soft_before_front(self):
        assert romanization_to_indic_phonemes("Cecil")[0] == "s"
        assert romanization_to_indic_phonemes("Kamal")[0] == "k"

    def test_syllabic_y(self):
        phonemes = romanization_to_indic_phonemes("Hydrogen")
        assert phonemes[1] == "ɪ"

    def test_dental_default_for_t_d(self):
        assert "t̪" in romanization_to_indic_phonemes("Gita")
        assert "d̪" in romanization_to_indic_phonemes("Deva")


class TestEnglishAdaptation:
    def test_diphthongs_become_long_vowels(self):
        assert adapt_english_to_indic(("e", "ɪ")) == ("eː",)
        assert adapt_english_to_indic(("o", "ʊ")) == ("oː",)

    def test_alveolars_become_retroflex(self):
        assert adapt_english_to_indic(("t", "ɑ", "d")) == ("ʈ", "aː", "ɖ")

    def test_nurse_becomes_schwa_r(self):
        assert adapt_english_to_indic(("ɜ",)) == ("ə", "r")

    def test_unknown_symbols_pass_through(self):
        assert adapt_english_to_indic(("m", "ŋ")) == ("m", "ŋ")


class TestDevanagariGeneration:
    def test_simple_cv_word(self):
        assert to_devanagari(parse_ipa("raːm")) == "राम"

    def test_consonant_cluster_uses_virama(self):
        text = to_devanagari(parse_ipa("krɪʃnaː"))
        assert "्" in text

    def test_inherent_schwa_unwritten(self):
        assert to_devanagari(parse_ipa("kəməl")) == "कमल"

    def test_anusvara_before_consonant(self):
        text = to_devanagari(parse_ipa("bəŋgaːl"))
        assert "ं" in text

    def test_nasal_vowel_gets_candrabindu(self):
        text = to_devanagari(parse_ipa("mãː".replace("ãː", "aː̃")))
        assert "ँ" in text

    def test_roundtrip_through_hindi_g2p(self):
        hin = HindiConverter()
        for ipa in ["raːm", "kəməl", "dʒəʋaːɦər", "miːraː", "ʃərmaː"]:
            written = to_devanagari(parse_ipa(ipa))
            read = "".join(hin.to_phonemes(written))
            assert read == ipa, (ipa, written, read)

    def test_unknown_symbol_raises(self):
        from repro.errors import PhonemeError

        with pytest.raises(PhonemeError):
            to_devanagari(("??",))

    def test_every_inventory_phoneme_spellable(self):
        """Both scripts must cover the whole inventory (totality)."""
        from repro.phonetics.inventory import INVENTORY

        for sym in INVENTORY:
            to_devanagari((sym,))
            to_tamil((sym,))


class TestTamilGeneration:
    def test_simple_word(self):
        assert to_tamil(parse_ipa("raːmaː")) == "ராமா"

    def test_initial_n_dental(self):
        assert to_tamil(parse_ipa("nala")).startswith("ந")

    def test_medial_n_alveolar(self):
        assert "ன" in to_tamil(parse_ipa("kənə"))

    def test_voicing_folds_to_same_letter(self):
        # b and p both spell ப
        assert to_tamil(parse_ipa("ba")) == to_tamil(parse_ipa("pa"))

    def test_intervocalic_voiceless_geminates(self):
        text = to_tamil(parse_ipa("paka"))
        assert "க்க" in text

    def test_intervocalic_voiced_single(self):
        text = to_tamil(parse_ipa("paga"))
        assert "க்க" not in text

    def test_roundtrip_preserves_voicing_contrast(self):
        tam = TamilConverter()
        voiceless = to_tamil(parse_ipa("paka"))
        voiced = to_tamil(parse_ipa("paga"))
        assert "k" in tam.to_phonemes(voiceless)
        assert "g" in tam.to_phonemes(voiced)

    def test_aspiration_lost(self):
        tam = TamilConverter()
        text = to_tamil(parse_ipa("kʰaːn"))
        assert "kʰ" not in tam.to_phonemes(text)

    def test_f_becomes_p(self):
        tam = TamilConverter()
        text = to_tamil(parse_ipa("fiʃər"))
        read = tam.to_phonemes(text)
        assert read[0] == "p"
