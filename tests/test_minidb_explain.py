"""Tests for EXPLAIN / EXPLAIN ANALYZE plan output."""

import re

import pytest

from repro import obs
from repro.core.engine import create_phonetic_accelerator
from repro.core.integration import install_lexequal
from repro.errors import SQLSyntaxError
from repro.minidb.catalog import Database
from repro.minidb.schema import Column
from repro.minidb.sql import ExplainStmt, parse
from repro.minidb.values import LangText, SqlType

LEXEQUAL_QUERY = (
    "SELECT * FROM books WHERE author LEXEQUAL 'Nehru' THRESHOLD 0.25"
)


@pytest.fixture()
def plain_db() -> Database:
    db = Database()
    db.execute(
        "CREATE TABLE books (id INTEGER, author TEXT, title TEXT, "
        "price REAL)"
    )
    db.execute(
        "INSERT INTO books VALUES "
        "(1, 'Nehru', 'Discovery of India', 9.95), "
        "(2, 'Nero', 'Coronation', 99.0), "
        "(3, 'Sarma', 'Vedas', 5.0)"
    )
    return db


def _books_db(matcher=None) -> Database:
    db = Database()
    matcher = install_lexequal(db, matcher)
    db.create_table(
        "books",
        [
            Column("author", SqlType.LANGTEXT),
            Column("title", SqlType.TEXT),
        ],
    )
    rows = [
        (LangText("Nehru", "english"), "Discovery of India"),
        (LangText("नेहरु", "hindi"), "भारत एक खोज"),
        (LangText("நேரு", "tamil"), "ஆசிய ஜோதி"),
        (LangText("Nero", "english"), "The Coronation"),
        (LangText("Σαρρη", "greek"), "Παιχνίδια στο Πιάνο"),
    ]
    for row in rows:
        db.insert("books", row)
    return db, matcher


def _actual_rows(plan_line: str) -> int:
    match = re.search(r"actual rows=(\d+)", plan_line)
    assert match, f"no actual rows in {plan_line!r}"
    return int(match.group(1))


class TestParsing:
    def test_explain_statement(self):
        stmt = parse("EXPLAIN SELECT x FROM t")
        assert isinstance(stmt, ExplainStmt)
        assert not stmt.analyze

    def test_explain_analyze_statement(self):
        stmt = parse("EXPLAIN ANALYZE SELECT x FROM t")
        assert isinstance(stmt, ExplainStmt)
        assert stmt.analyze

    def test_explain_non_select_rejected(self):
        with pytest.raises(SQLSyntaxError):
            parse("EXPLAIN INSERT INTO t VALUES (1)")


class TestPlanShape:
    def test_seqscan_filter_project(self, plain_db):
        plan = plain_db.explain(
            "SELECT title FROM books WHERE price < 10"
        )
        assert "SeqScan on books" in plan
        assert "Filter: price < 10" in plan
        assert "Project: title" in plan
        assert "actual rows" not in plan

    def test_indented_tree(self, plain_db):
        lines = plain_db.explain(
            "SELECT title FROM books WHERE price < 10 ORDER BY title"
        ).splitlines()
        assert lines[0].startswith("Project:")
        assert all("->" in line for line in lines[1:])
        # Child nodes are indented strictly deeper than their parents.
        indents = [len(line) - len(line.lstrip()) for line in lines]
        assert indents == sorted(indents)

    def test_sort_and_limit_nodes(self, plain_db):
        plan = plain_db.explain(
            "SELECT id FROM books ORDER BY price DESC LIMIT 2"
        )
        assert "Limit: 2" in plan
        assert "Sort:" in plan
        assert "DESC" in plan

    def test_explain_via_execute_result_set(self, plain_db):
        result = plain_db.execute("EXPLAIN SELECT id FROM books")
        assert result.columns == ["QUERY PLAN"]
        assert any("SeqScan" in row[0] for row in result.rows)


class TestExplainAnalyze:
    def test_row_counts_match_actual_cardinality(self, plain_db):
        query = "SELECT title FROM books WHERE price < 10"
        expected = len(plain_db.execute(query).rows)
        plan = plain_db.explain(query, analyze=True)
        root = plan.splitlines()[0]
        assert _actual_rows(root) == expected
        assert f"Result rows: {expected}" in plan
        assert "Execution time:" in plan

    def test_child_rows_at_least_root_rows(self, plain_db):
        plan = plain_db.explain(
            "SELECT title FROM books WHERE price < 10", analyze=True
        )
        lines = [ln for ln in plan.splitlines() if "actual rows" in ln]
        # Filter passes fewer (or equal) rows than the scan produces.
        counts = [_actual_rows(ln) for ln in lines]
        assert counts == sorted(counts)


class TestLexEqualPlans:
    def test_unaccelerated_predicate_scans(self):
        db, _matcher = _books_db()
        plan = db.explain(LEXEQUAL_QUERY)
        assert "SeqScan on books" in plan
        assert "lexequal" in plan.lower()
        assert "RowidScan" not in plan

    def test_accelerated_predicate_uses_rowid_scan(self):
        db, matcher = _books_db()
        accelerator = create_phonetic_accelerator(
            db, "books", "author", matcher
        )
        plan = db.explain(LEXEQUAL_QUERY)
        assert "RowidScan on books via qgram accelerator" in plan
        # Candidate count in the plan equals what the accelerator reports.
        expected = len(accelerator.candidate_rowids("Nehru", 0.25))
        assert f"(candidates={expected})" in plan
        # The UDF recheck stays on top of the candidate scan.
        assert "Filter: lexequal(author, 'Nehru', 0.25" in plan

    def test_analyze_consistent_with_results_and_candidates(self):
        db, matcher = _books_db()
        accelerator = create_phonetic_accelerator(
            db, "books", "author", matcher
        )
        result = db.execute(LEXEQUAL_QUERY)
        plan = db.explain(LEXEQUAL_QUERY, analyze=True)
        lines = plan.splitlines()
        candidates = len(accelerator.candidate_rowids("Nehru", 0.25))
        scan_line = next(ln for ln in lines if "RowidScan" in ln)
        filter_line = next(ln for ln in lines if "Filter" in ln)
        # Scan emits every candidate; the UDF recheck narrows them to
        # the true result set (StrategyStats accounting, Tables 2/3).
        assert _actual_rows(scan_line) == candidates
        assert _actual_rows(filter_line) == len(result.rows)
        assert _actual_rows(lines[0]) == len(result.rows)
        assert f"Result rows: {len(result.rows)}" in plan

    def test_index_accelerator_attribution(self):
        db, matcher = _books_db()
        create_phonetic_accelerator(
            db, "books", "author", matcher, method="index"
        )
        plan = db.explain(LEXEQUAL_QUERY)
        assert "via index accelerator" in plan


class TestMetricsIntegration:
    def test_explain_increments_counters(self, plain_db):
        obs.disable()
        try:
            obs.enable()
            plain_db.explain("SELECT id FROM books")
            plain_db.explain("SELECT id FROM books", analyze=True)
            counters = obs.snapshot()["counters"]
            assert counters["minidb.explain"] == 1
            assert counters["minidb.explain_analyze"] == 1
        finally:
            obs.disable()

    def test_accelerated_plan_counters(self):
        db, matcher = _books_db()
        create_phonetic_accelerator(db, "books", "author", matcher)
        obs.disable()
        try:
            obs.enable()
            db.execute(LEXEQUAL_QUERY)
            data = obs.snapshot()
            assert data["counters"]["minidb.plans.accelerated"] == 1
            assert data["histograms"]["minidb.accelerator.candidates"][
                "count"
            ] == 1
            assert data["timers"]["minidb.execute_select"]["count"] == 1
        finally:
            obs.disable()
