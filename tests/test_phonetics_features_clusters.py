"""Tests for phoneme similarity and clustering."""

import pytest

from repro.errors import PhonemeError
from repro.phonetics.clusters import (
    PhonemeClustering,
    auto_clustering,
    default_clustering,
    singleton_clustering,
)
from repro.phonetics.features import phoneme_similarity, similarity_matrix
from repro.phonetics.inventory import INVENTORY


class TestSimilarity:
    def test_identity_is_one(self):
        for sym in ["p", "a", "tʃ", "kʰ", "aː"]:
            assert phoneme_similarity(sym, sym) == 1.0

    def test_symmetry(self):
        pairs = [("p", "b"), ("t", "ʈ"), ("a", "i"), ("s", "ʃ"), ("m", "ŋ")]
        for a, b in pairs:
            assert phoneme_similarity(a, b) == phoneme_similarity(b, a)

    def test_range(self):
        symbols = ["p", "b", "t", "d", "k", "g", "m", "n", "a", "i", "u"]
        for a in symbols:
            for b in symbols:
                assert 0.0 <= phoneme_similarity(a, b) <= 1.0

    def test_voicing_pair_closer_than_random_pair(self):
        assert phoneme_similarity("p", "b") > phoneme_similarity("p", "m")
        assert phoneme_similarity("t", "d") > phoneme_similarity("t", "l")

    def test_consonant_vowel_similarity_zero(self):
        assert phoneme_similarity("p", "a") == 0.0

    def test_near_places_closer_than_far_places(self):
        # dental vs alveolar closer than dental vs glottal
        assert phoneme_similarity("t̪", "t") > phoneme_similarity("t̪", "ʔ")

    def test_aspiration_pair_very_close(self):
        assert phoneme_similarity("k", "kʰ") > 0.85

    def test_vowel_height_gradient(self):
        # i is closer to e than to a
        assert phoneme_similarity("i", "e") > phoneme_similarity("i", "a")

    def test_similarity_matrix_diagonal(self):
        matrix = similarity_matrix(("p", "b", "a"))
        assert matrix[("p", "p")] == 1.0
        assert matrix[("p", "b")] == matrix[("b", "p")]


class TestDefaultClustering:
    def test_total_over_inventory(self):
        clustering = default_clustering()
        for sym in INVENTORY:
            clustering.cluster_id(sym)  # must not raise

    def test_soundex_like_groups(self):
        c = default_clustering()
        assert c.same_cluster("p", "b")
        assert c.same_cluster("t", "ʈ")
        assert c.same_cluster("t", "d̪")
        assert c.same_cluster("k", "g")
        assert c.same_cluster("m", "n")
        assert c.same_cluster("r", "l")
        assert c.same_cluster("tʃ", "dʒ")
        assert c.same_cluster("s", "z")
        assert c.same_cluster("h", "ɦ")

    def test_cross_type_never_clustered(self):
        c = default_clustering()
        assert not c.same_cluster("p", "a")
        assert not c.same_cluster("p", "m")
        assert not c.same_cluster("k", "tʃ")

    def test_length_and_nasal_variants_cluster_with_base(self):
        c = default_clustering()
        assert c.same_cluster("a", "aː")
        assert c.same_cluster("e", "ẽ")
        assert c.same_cluster("k", "kʰ")

    def test_vowel_regions(self):
        c = default_clustering()
        assert c.same_cluster("i", "ɪ")
        assert c.same_cluster("u", "ʊ")
        assert c.same_cluster("e", "ɛ")
        assert c.same_cluster("a", "ə")
        assert c.same_cluster("o", "ɔ")
        assert not c.same_cluster("i", "u")
        assert not c.same_cluster("e", "o")

    def test_map_string(self):
        c = default_clustering()
        mapped = c.map_string(("n", "e", "h", "r", "u"))
        assert len(mapped) == 5
        assert mapped == c.map_string(("n", "eː", "ɦ", "r", "ʊ"))


class TestCustomClustering:
    def test_duplicate_assignment_rejected(self):
        with pytest.raises(PhonemeError):
            PhonemeClustering([["p", "b"], ["b", "m"]])

    def test_empty_cluster_rejected(self):
        with pytest.raises(PhonemeError):
            PhonemeClustering([[]])

    def test_unknown_symbol_rejected(self):
        with pytest.raises(PhonemeError):
            PhonemeClustering([["p", "??"]])

    def test_uncovered_symbols_become_singletons(self):
        c = PhonemeClustering([["p", "b"]])
        assert c.same_cluster("p", "b")
        assert not c.same_cluster("t", "d")

    def test_members_roundtrip(self):
        c = PhonemeClustering([["p", "b"]])
        assert c.members(c.cluster_id("p")) == ("p", "b")

    def test_equality_and_hash(self):
        a = PhonemeClustering([["p", "b"]])
        b = PhonemeClustering([["p", "b"]])
        assert a == b
        assert hash(a) == hash(b)


class TestSingletonClustering:
    def test_no_two_symbols_share(self):
        c = singleton_clustering()
        assert not c.same_cluster("p", "b")
        assert not c.same_cluster("a", "aː")


class TestAutoClustering:
    def test_voicing_pairs_merge_first(self):
        c = auto_clustering(
            0.8, symbols=("p", "b", "t", "d", "m", "i", "e", "a")
        )
        assert c.same_cluster("p", "b")
        assert c.same_cluster("t", "d")
        assert not c.same_cluster("p", "m")

    def test_threshold_one_merges_nothing(self):
        c = auto_clustering(1.0, symbols=("p", "b", "t"))
        assert not c.same_cluster("p", "b")

    def test_invalid_threshold(self):
        with pytest.raises(PhonemeError):
            auto_clustering(0.0)
        with pytest.raises(PhonemeError):
            auto_clustering(1.5)

    def test_consonants_never_merge_with_vowels(self):
        c = auto_clustering(0.2, symbols=("p", "b", "a", "e"))
        assert not c.same_cluster("p", "a")
