"""Chaos tests: the real server under a randomized failpoint schedule.

The harness drives concurrent resilient clients against a
:class:`BackgroundServer` while seeded failpoints inject connection
drops, per-language TTP failures, and admission rejects, then asserts
the robustness contract:

* **zero wrong results** — every successful response is either exactly
  correct or *properly degraded* (missing rows are explained by the
  ``failed_languages`` it reports);
* **zero hangs** — every request resolves (success or structured
  error) within a hard wall-clock bound;
* **bounded error rate** — retries absorb almost all injected faults.

``scripts/chaos_smoke.py`` runs the same contract at CI scale (500
requests); this test keeps a smaller schedule inside the tier-1 suite.
"""

import threading
import time

import pytest

from repro import faults, obs
from repro.errors import (
    CircuitOpenError,
    RequestFailedError,
    TransportError,
)
from repro.server import BackgroundServer, LexEqualClient, RetryPolicy

SEED = 2004

LEXEQUAL_SQL = (
    "SELECT author FROM books "
    "WHERE author LEXEQUAL 'Nehru' THRESHOLD 0.25"
)
#: The query's full answer, and the language each row belongs to.
LANG_OF = {"Nehru": "english", "नेहरु": "hindi", "நேரு": "tamil"}
EXPECTED_AUTHORS = frozenset(LANG_OF)

#: Structured error codes a chaos run is allowed to surface: both mean
#: "not executed / give up cleanly", never a wrong answer.
ACCEPTABLE_CODES = frozenset({"overloaded", "timeout", "shutting_down"})


@pytest.fixture(autouse=True)
def _clean_state():
    faults.reset()
    yield
    faults.reset()
    obs.disable()


def classify_query(result: dict):
    """Check one query response; returns (kind, detail)."""
    authors = {row[0]["text"] for row in result["rows"]}
    extra = authors - EXPECTED_AUTHORS
    if extra:
        return "wrong", f"unexpected rows {extra}"
    missing = EXPECTED_AUTHORS - authors
    if not missing:
        return "ok", None
    if not result.get("degraded"):
        return "wrong", f"missing {missing} without degraded marker"
    failed = set(result.get("failed_languages", ()))
    unexplained = {
        name
        for name in missing
        # The english query operand failing can lose any row; otherwise
        # a missing row must belong to a reported failed language.
        if LANG_OF[name] not in failed and "english" not in failed
    }
    if unexplained:
        return "wrong", f"missing {unexplained} not explained by {failed}"
    return "degraded", None


def classify_lexequal(result: dict):
    """Check one lexequal('Nehru', 'नेहरु') response."""
    outcome = result.get("outcome")
    if outcome == "true":
        return "ok", None
    if outcome == "noresource" and result.get("degraded"):
        failed = set(result.get("failed_languages", ()))
        if failed & {"hindi", "english"}:
            return "degraded", None
    return "wrong", f"bad lexequal outcome {result!r}"


def chaos_schedule():
    """~10% connection drops, ~5% TTP failures, occasional rejects."""
    faults.seed(SEED)
    faults.configure("server.conn.drop_read", probability=0.05)
    faults.configure("server.conn.drop_write", probability=0.05)
    faults.configure(
        "ttp.transform",
        probability=0.05,
        error="ttp",
        languages=("hindi", "tamil"),
    )
    faults.configure("pool.admit", probability=0.03)


class TestChaos:
    ROUNDS = 25
    CLIENTS = 4
    #: Hard per-request wall bound: anything slower counts as a hang.
    REQUEST_WALL_SECONDS = 30.0

    def test_randomized_schedule_yields_no_wrong_results_or_hangs(self):
        outcomes: list = []  # (kind, detail) per request, all threads
        lock = threading.Lock()

        def record(kind, detail=None):
            with lock:
                outcomes.append((kind, detail))

        def worker(host, port):
            retry = RetryPolicy(
                max_attempts=6, base_delay=0.01, max_delay=0.2
            )
            client = LexEqualClient(
                host, port, timeout=self.REQUEST_WALL_SECONDS, retry=retry
            )
            try:
                for round_no in range(self.ROUNDS):
                    op = round_no % 3
                    started = time.monotonic()
                    try:
                        if op == 0:
                            record(*classify_query(client.query(LEXEQUAL_SQL)))
                        elif op == 1:
                            record(
                                *classify_lexequal(
                                    client.lexequal("Nehru", "नेहरु")
                                )
                            )
                        else:
                            if client.ping() == "pong":
                                record("ok")
                            else:
                                record("wrong", "bad ping")
                    except RequestFailedError as exc:
                        if exc.code in ACCEPTABLE_CODES:
                            record("error", exc.code)
                        else:
                            record("wrong", f"unexpected code {exc.code}")
                    except (TransportError, CircuitOpenError) as exc:
                        # Retries exhausted: a clean failure, not a
                        # wrong answer — but it must count against the
                        # error budget.
                        record("error", repr(exc))
                    elapsed = time.monotonic() - started
                    if elapsed > self.REQUEST_WALL_SECONDS:
                        record("hang", f"{elapsed:.1f}s")
            except Exception as exc:  # pragma: no cover - harness bug
                record("crash", repr(exc))
            finally:
                client.close()

        with BackgroundServer(fault_injection=True, max_workers=4) as bg:
            chaos_schedule()
            threads = [
                threading.Thread(target=worker, args=(bg.host, bg.port))
                for _ in range(self.CLIENTS)
            ]
            started = time.monotonic()
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=180.0)
            hung_threads = [t for t in threads if t.is_alive()]
            total_wall = time.monotonic() - started
            fired = faults.describe()
            faults.reset()  # stop injecting before drain/shutdown

        total = self.ROUNDS * self.CLIENTS
        by_kind: dict = {}
        for kind, _ in outcomes:
            by_kind[kind] = by_kind.get(kind, 0) + 1
        wrong = [o for o in outcomes if o[0] == "wrong"]
        hangs = [o for o in outcomes if o[0] == "hang"]
        crashes = [o for o in outcomes if o[0] == "crash"]

        assert not hung_threads, f"hung worker threads after {total_wall:.0f}s"
        assert len(outcomes) >= total - len(crashes) * self.ROUNDS
        assert not crashes, crashes[:3]
        assert not wrong, wrong[:5]
        assert not hangs, hangs[:5]
        # The schedule actually injected faults (the run was not a
        # trivially healthy one).
        assert sum(point["fires"] for point in fired.values()) > 0
        # Bounded error rate: retries ride through almost everything.
        errors = by_kind.get("error", 0)
        assert errors <= total * 0.2, (by_kind, outcomes[:10])

    def test_seeded_schedule_is_reproducible_single_threaded(self):
        """One client, fixed seed: two runs see identical fire patterns."""

        def run():
            with BackgroundServer(fault_injection=True, max_workers=1) as bg:
                faults.seed(SEED)
                faults.configure(
                    "server.conn.drop_write", probability=0.3
                )
                kinds = []
                with LexEqualClient(
                    bg.host,
                    bg.port,
                    timeout=10.0,
                    retry=RetryPolicy(max_attempts=8, base_delay=0.0),
                ) as client:
                    for _ in range(20):
                        kinds.append(client.ping())
                fired = faults.describe()["server.conn.drop_write"]["fires"]
                faults.reset()
                return kinds, fired

        kinds_a, fired_a = run()
        kinds_b, fired_b = run()
        assert kinds_a == kinds_b == ["pong"] * 20
        assert fired_a == fired_b > 0
