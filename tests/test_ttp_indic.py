"""Tests for the Hindi (Devanagari) and Tamil converters."""

import pytest

from repro.errors import TTPError
from repro.ttp.hindi import HindiConverter
from repro.ttp.tamil import TamilConverter


@pytest.fixture(scope="module")
def hin() -> HindiConverter:
    return HindiConverter()


@pytest.fixture(scope="module")
def tam() -> TamilConverter:
    return TamilConverter()


class TestHindiBasics:
    @pytest.mark.parametrize(
        "text,ipa",
        [
            ("नेहरु", "neːɦrʊ"),
            ("भारत", "bʱaːrət̪"),
            ("राम", "raːm"),
            ("जवाहरलाल", "dʒəʋaːɦərlaːl"),
            ("इंडिया", "ɪɳɖɪjaː"),
            ("क़ानून", "qaːnuːn"),
        ],
    )
    def test_pronunciations(self, hin, text, ipa):
        assert hin.to_ipa(text) == ipa

    def test_inherent_schwa(self, hin):
        # कल = k + inherent ə + l (final schwa of l deleted)
        assert hin.to_phonemes("कल") == ("k", "ə", "l")

    def test_virama_suppresses_schwa(self, hin):
        assert hin.to_phonemes("क्रम") == ("k", "r", "ə", "m")

    def test_final_schwa_deletion(self, hin):
        assert hin.to_phonemes("राम")[-1] == "m"

    def test_medial_schwa_deletion_right_to_left(self, hin):
        # जवाहरलाल keeps the schwa after व़...ह and drops the one after र
        assert hin.to_ipa("जवाहरलाल") == "dʒəʋaːɦərlaːl"

    def test_medial_schwa_can_be_disabled(self):
        conv = HindiConverter(delete_medial_schwa=False)
        assert conv.to_ipa("जवाहरलाल") == "dʒəʋaːɦərəlaːl"

    def test_aspirates(self, hin):
        assert hin.to_phonemes("खग")[0] == "kʰ"
        assert hin.to_phonemes("घर")[0] == "gʱ"
        assert hin.to_phonemes("धन")[0] == "d̪ʱ"

    def test_retroflex_vs_dental(self, hin):
        assert hin.to_phonemes("टन")[0] == "ʈ"
        assert hin.to_phonemes("तन")[0] == "t̪"

    def test_nukta_consonants(self, hin):
        assert hin.to_phonemes("फ़न")[0] == "f"
        assert hin.to_phonemes("ज़न")[0] == "z"
        assert hin.to_phonemes("बड़ा") == ("b", "ə", "ɽ", "aː")

    def test_anusvara_assimilates(self, hin):
        assert "ŋ" in hin.to_phonemes("गंगा")  # before velar
        assert "m" in hin.to_phonemes("संपत")  # before labial
        assert "n" in hin.to_phonemes("संत")  # before coronal

    def test_candrabindu_nasalizes_vowel(self, hin):
        phonemes = hin.to_phonemes("माँ")
        assert phonemes[-1].endswith("̃")

    def test_visarga(self, hin):
        assert hin.to_phonemes("दुःख")[2] == "h"

    def test_unknown_character_raises(self, hin):
        with pytest.raises(TTPError):
            hin.to_phonemes("नेQहरु")

    def test_matra_without_consonant_raises(self, hin):
        with pytest.raises(TTPError):
            hin.to_phonemes("ा")


class TestTamilBasics:
    @pytest.mark.parametrize(
        "text,ipa",
        [
            ("நேரு", "n̪eːɾu"),
            ("இந்தியா", "in̪d̪ijaː"),
            ("ராமா", "ɾaːmaː"),
            ("காந்தி", "kaːn̪d̪i"),
        ],
    )
    def test_pronunciations(self, tam, text, ipa):
        assert tam.to_ipa(text) == ipa

    def test_initial_stop_voiceless(self, tam):
        assert tam.to_phonemes("கமல்")[0] == "k"
        assert tam.to_phonemes("படம்")[0] == "p"

    def test_intervocalic_stop_voiced(self, tam):
        # புகழ்: க between vowels -> g
        assert "g" in tam.to_phonemes("புகழ்")

    def test_stop_after_nasal_voiced(self, tam):
        phonemes = tam.to_phonemes("பங்கு")
        assert "g" in phonemes

    def test_geminate_voiceless_and_single(self, tam):
        # க்க between vowels reads as a single voiceless k
        phonemes = tam.to_phonemes("பக்கம்")
        assert phonemes.count("k") == 1
        assert "g" not in phonemes

    def test_intervocalic_cha_is_s(self, tam):
        phonemes = tam.to_phonemes("பசி")
        assert "s" in phonemes

    def test_coda_stop_voiceless(self, tam):
        # ஸ்மித்: final த் voiceless
        assert tam.to_phonemes("ஸ்மித்")[-1] == "t̪"

    def test_grantha_letters(self, tam):
        assert tam.to_phonemes("ஜய")[0] == "dʒ"
        assert tam.to_phonemes("ஷா")[0] == "ʂ"
        assert tam.to_phonemes("ஸda".replace("da", "ா"))[0] == "s"
        assert tam.to_phonemes("ஹரி")[0] == "h"

    def test_ksha_conjunct(self, tam):
        phonemes = tam.to_phonemes("லக்ஷ்மி")
        assert "k" in phonemes and "ʂ" in phonemes

    def test_aytham_f(self, tam):
        assert tam.to_phonemes("ஃபேன்")[0] == "f"

    def test_retroflex_laterals_and_approximants(self, tam):
        assert "ɭ" in tam.to_phonemes("வள்ளி")
        assert "ɻ" in tam.to_phonemes("தமிழ்")

    def test_trill_vs_tap(self, tam):
        assert "r" in tam.to_phonemes("மறவன்")  # ற lone = trill
        assert "ɾ" in tam.to_phonemes("மரம்")  # ர = tap

    def test_unknown_character_raises(self, tam):
        with pytest.raises(TTPError):
            tam.to_phonemes("நேXரு")


class TestIndicRoundTripWithTransliteration:
    """The transliteration channel must produce readable orthography."""

    def test_devanagari_roundtrip_close(self, hin):
        from repro.data.transliterate import (
            romanization_to_indic_phonemes,
            to_devanagari,
        )

        for name in ["Krishna", "Gopal", "Meena", "Jawahar", "Sundaram"]:
            intent = romanization_to_indic_phonemes(name)
            written = to_devanagari(intent)
            read_back = hin.to_phonemes(written)
            # The round trip may lose schwas but never consonant skeleta.
            assert len(read_back) >= len(intent) - 2

    def test_tamil_roundtrip_produces_valid_text(self, tam):
        from repro.data.transliterate import (
            romanization_to_indic_phonemes,
            to_tamil,
        )

        for name in ["Krishna", "Gopal", "Meena", "Jawahar", "Sundaram"]:
            intent = romanization_to_indic_phonemes(name)
            written = to_tamil(intent)
            assert tam.to_phonemes(written)
