"""Tests for the TTP registry, language detection and folding behavior."""

import pytest

from repro.errors import TTPError, UnsupportedLanguageError
from repro.ttp.base import TTPConverter
from repro.ttp.registry import (
    TTPRegistry,
    default_registry,
    detect_language,
    supported_languages,
    transform,
)


class TestRegistry:
    def test_default_registry_supports_six_languages(self):
        langs = supported_languages()
        for lang in ["english", "hindi", "tamil", "greek", "spanish", "french"]:
            assert lang in langs

    def test_unsupported_language_raises(self):
        registry = TTPRegistry()
        with pytest.raises(UnsupportedLanguageError):
            registry.converter_for("klingon")

    def test_unregister(self):
        from repro.ttp.english import EnglishConverter

        registry = TTPRegistry([EnglishConverter()])
        assert registry.supports("english")
        registry.unregister("english")
        assert not registry.supports("english")

    def test_case_insensitive_lookup(self):
        assert default_registry().supports("English")
        assert default_registry().supports("ENGLISH")

    def test_transform_caches(self):
        registry = TTPRegistry(fold=False)

        calls = []

        class Fake(TTPConverter):
            language = "fake"
            script = "latin"

            def _word_to_phonemes(self, word):
                calls.append(word)
                return ("n", "a")

        registry.register(Fake())
        registry.transform("na", "fake")
        registry.transform("na", "fake")
        assert len(calls) == 1
        registry.clear_cache()
        registry.transform("na", "fake")
        assert len(calls) == 2

    def test_converter_without_language_rejected(self):
        class Bad(TTPConverter):
            language = ""

            def _word_to_phonemes(self, word):
                return ()

        with pytest.raises(TTPError):
            TTPRegistry([Bad()])


class TestFolding:
    def test_registry_folds_by_default(self):
        phonemes = transform("नेहरु", "hindi")
        assert "ɦ" not in phonemes  # folded to h
        assert "ʊ" not in phonemes  # folded to u

    def test_unfolded_registry_keeps_raw(self):
        from repro.ttp.base import builtin_converters

        raw = TTPRegistry(builtin_converters(), fold=False)
        phonemes = raw.transform("नेहरु", "hindi")
        assert "ɦ" in phonemes

    def test_folded_output_has_same_length(self):
        raw = default_registry().converter_for("hindi").to_phonemes("भारत")
        folded = transform("भारत", "hindi")
        assert len(raw) == len(folded)


class TestDetectLanguage:
    def test_devanagari(self):
        assert detect_language("नेहरु") == "hindi"

    def test_tamil(self):
        assert detect_language("நேரு") == "tamil"

    def test_greek(self):
        assert detect_language("Νερου") == "greek"

    def test_latin_defaults_to_english(self):
        assert detect_language("Nehru") == "english"

    def test_latin_default_overridable(self):
        assert detect_language("Nehru", latin_default="french") == "french"

    def test_leading_space_skipped(self):
        assert detect_language("  नेहरु") == "hindi"

    def test_undetectable_raises(self):
        with pytest.raises(TTPError):
            detect_language("!!!")
