"""Tests for the NameCatalog and the three execution strategies.

The central invariants (paper Section 5):

* the q-gram strategy returns *exactly* the naive strategy's results —
  the filters only remove non-matches;
* the phonetic-index strategy returns a *subset* (false dismissals are
  possible, false positives are not);
* all strategies respect language restrictions and thresholds.
"""

import pytest

from repro.core import (
    ExactStrategy,
    LexEqualMatcher,
    MatchConfig,
    NaiveUdfStrategy,
    NameCatalog,
    PhoneticIndexStrategy,
    QGramStrategy,
)
from repro.errors import DatasetError


class TestNameCatalog:
    def test_add_assigns_sequential_ids(self, matcher):
        catalog = NameCatalog(matcher)
        first = catalog.add("Nehru", "english", 1)
        second = catalog.add("नेहरु", "hindi", 1)
        assert (first, second) == (0, 1)
        assert len(catalog) == 2

    def test_record_fetch(self, nehru_catalog):
        record = nehru_catalog.record(0)
        assert record.name == "Nehru"
        assert record.language == "english"
        assert record.tag == 1
        assert record.ipa

    def test_record_missing_raises(self, nehru_catalog):
        with pytest.raises(DatasetError):
            nehru_catalog.record(999)

    def test_records_in_id_order(self, nehru_catalog):
        ids = [r.id for r in nehru_catalog.records()]
        assert ids == sorted(ids)

    def test_precomputed_ipa_respected(self, matcher):
        catalog = NameCatalog(matcher)
        catalog.add("Custom", "english", ipa="nero")
        assert catalog.record(0).ipa == "nero"
        assert catalog.phonemes_of(0) == ("n", "e", "r", "o")

    def test_empty_transcription_rejected(self, matcher):
        catalog = NameCatalog(matcher)
        with pytest.raises(DatasetError):
            catalog.add("-", "english")

    def test_qgram_rows_created(self, matcher):
        catalog = NameCatalog(matcher)
        catalog.add("Nehru", "english")
        qgrams = catalog.db.table(catalog.qgram_table_name)
        phonemes = catalog.phonemes_of(0)
        assert len(qgrams) == len(phonemes) + catalog.config.q - 1


class TestSelect:
    def test_naive_matches_figure_4(self, nehru_catalog):
        results = NaiveUdfStrategy(nehru_catalog).select("Nehru")
        assert [r.name for r in results] == ["Nehru", "नेहरु", "நேரு"]

    def test_qgram_equals_naive(self, nehru_catalog):
        for query in ["Nehru", "Gandhi", "Krishnan", "Smith", "Zzyzx"]:
            naive = NaiveUdfStrategy(nehru_catalog).select(query)
            qgram = QGramStrategy(nehru_catalog).select(query)
            assert [r.id for r in qgram] == [r.id for r in naive], query

    def test_phonetic_subset_of_naive(self, nehru_catalog):
        for query in ["Nehru", "Gandhi", "Krishnan", "Smith"]:
            naive = {r.id for r in NaiveUdfStrategy(nehru_catalog).select(query)}
            indexed = {
                r.id for r in PhoneticIndexStrategy(nehru_catalog).select(query)
            }
            assert indexed <= naive

    def test_language_restriction(self, nehru_catalog):
        results = NaiveUdfStrategy(nehru_catalog).select(
            "Nehru", languages=("hindi",)
        )
        assert [r.language for r in results] == ["hindi"]

    def test_stats_show_filter_effectiveness(self, nehru_catalog):
        naive = NaiveUdfStrategy(nehru_catalog)
        qgram = QGramStrategy(nehru_catalog)
        naive.select("Nehru")
        qgram.select("Nehru")
        assert qgram.last_stats.udf_calls < naive.last_stats.udf_calls

    def test_exact_strategy_cannot_cross_scripts(self, nehru_catalog):
        results = ExactStrategy(nehru_catalog).select("Nehru")
        assert [r.name for r in results] == ["Nehru"]


class TestJoin:
    def test_naive_join_finds_cross_script_groups(self, nehru_catalog):
        pairs = NaiveUdfStrategy(nehru_catalog).join()
        names = {(a.name, b.name) for a, b in pairs}
        assert ("Nehru", "नेहरु") in names
        assert ("Gandhi", "गांधी") in names

    def test_join_cross_language_only(self, nehru_catalog):
        pairs = NaiveUdfStrategy(nehru_catalog).join(cross_language_only=True)
        assert all(a.language != b.language for a, b in pairs)

    def test_join_including_same_language(self, matcher):
        catalog = NameCatalog(matcher)
        catalog.add_many(
            [("Kathy", "english"), ("Cathy", "english")]
        )
        with_same = NaiveUdfStrategy(catalog).join(cross_language_only=False)
        without = NaiveUdfStrategy(catalog).join(cross_language_only=True)
        assert len(with_same) == 1
        assert len(without) == 0

    def test_qgram_join_equals_naive(self, nehru_catalog):
        naive = NaiveUdfStrategy(nehru_catalog).join()
        qgram = QGramStrategy(nehru_catalog).join()
        assert [(a.id, b.id) for a, b in qgram] == [
            (a.id, b.id) for a, b in naive
        ]

    def test_phonetic_join_subset(self, nehru_catalog):
        naive = {
            (a.id, b.id) for a, b in NaiveUdfStrategy(nehru_catalog).join()
        }
        indexed = {
            (a.id, b.id)
            for a, b in PhoneticIndexStrategy(nehru_catalog).join()
        }
        assert indexed <= naive

    def test_pairs_ordered_by_id(self, nehru_catalog):
        pairs = NaiveUdfStrategy(nehru_catalog).join()
        assert all(a.id < b.id for a, b in pairs)

    def test_exact_join_same_spelling_only(self, matcher):
        catalog = NameCatalog(matcher)
        catalog.add_many(
            [
                ("Nehru", "english"),
                ("Nehru", "french"),
                ("नेहरु", "hindi"),
            ]
        )
        pairs = ExactStrategy(catalog).join()
        assert len(pairs) == 1
        assert pairs[0][0].name == pairs[0][1].name == "Nehru"


class TestAgreementAtScale:
    """Randomized cross-strategy agreement over a lexicon slice."""

    @pytest.fixture(scope="class")
    def lexicon_catalog(self, small_lexicon):
        matcher = LexEqualMatcher()
        catalog = NameCatalog(matcher)
        for entry in small_lexicon:
            catalog.add(entry.name, entry.language, entry.tag, ipa=entry.ipa)
        return catalog

    def test_select_agreement(self, lexicon_catalog):
        queries = ["Aakash", "Krishna", "Aaron", "Amazon", "Acetone"]
        for query in queries:
            naive = NaiveUdfStrategy(lexicon_catalog).select(query)
            qgram = QGramStrategy(lexicon_catalog).select(query)
            indexed = PhoneticIndexStrategy(lexicon_catalog).select(query)
            assert [r.id for r in qgram] == [r.id for r in naive]
            assert {r.id for r in indexed} <= {r.id for r in naive}

    def test_join_agreement(self, lexicon_catalog):
        naive = NaiveUdfStrategy(lexicon_catalog).join()
        qgram = QGramStrategy(lexicon_catalog).join()
        indexed = PhoneticIndexStrategy(lexicon_catalog).join()
        assert [(a.id, b.id) for a, b in qgram] == [
            (a.id, b.id) for a, b in naive
        ]
        assert {(a.id, b.id) for a, b in indexed} <= {
            (a.id, b.id) for a, b in naive
        }

    def test_classical_config_agreement(self, small_lexicon):
        config = MatchConfig(
            threshold=0.25,
            intra_cluster_cost=1.0,
            weak_indel_cost=1.0,
            vowel_cross_cost=1.0,
        )
        catalog = NameCatalog(LexEqualMatcher(config))
        for entry in small_lexicon:
            catalog.add(entry.name, entry.language, entry.tag, ipa=entry.ipa)
        naive = NaiveUdfStrategy(catalog).join()
        qgram = QGramStrategy(catalog).join()
        assert [(a.id, b.id) for a, b in qgram] == [
            (a.id, b.id) for a, b in naive
        ]
