"""Tests for the SQL integration: the paper's queries run verbatim."""

import pytest

from repro.core import install_lexequal
from repro.minidb.catalog import Database
from repro.minidb.schema import Column
from repro.minidb.values import LangText, SqlType


@pytest.fixture()
def books_db(matcher) -> Database:
    """The Books.com catalog of paper Figure 1 (subset)."""
    db = Database()
    install_lexequal(db, matcher)
    db.create_table(
        "books",
        [
            Column("author", SqlType.LANGTEXT),
            Column("title", SqlType.TEXT),
            Column("price", SqlType.REAL),
            Column("language", SqlType.TEXT),
        ],
    )
    rows = [
        (LangText("Nehru", "english"), "Discovery of India", 9.95, "english"),
        (LangText("नेहरु", "hindi"), "भारत एक खोज", 175.0, "hindi"),
        (LangText("நேரு", "tamil"), "ஆசிய ஜோதி", 250.0, "tamil"),
        (LangText("Nero", "english"), "The Coronation", 99.0, "english"),
        (LangText("René", "french"), "Les Méditations", 49.0, "french"),
        (LangText("Σαρρη", "greek"), "Παιχνίδια στο Πιάνο", 15.5, "greek"),
    ]
    for row in rows:
        db.insert("books", row)
    return db


class TestFigure3Selection:
    def test_paper_query_returns_figure_4(self, books_db):
        result = books_db.execute(
            "select Author, Title from Books "
            "where Author LexEQUAL 'Nehru' Threshold 0.25 "
            "inlanguages { English, Hindi, Tamil, Greek }"
        )
        authors = {str(row[0]) for row in result.rows}
        assert authors == {"Nehru", "नेहरु", "நேரு"}

    def test_wildcard_languages(self, books_db):
        result = books_db.execute(
            "SELECT author FROM books WHERE author LEXEQUAL 'Nehru' "
            "THRESHOLD 0.25 INLANGUAGES *"
        )
        assert len(result) == 3

    def test_language_restriction_excludes(self, books_db):
        result = books_db.execute(
            "SELECT author FROM books WHERE author LEXEQUAL 'Nehru' "
            "THRESHOLD 0.25 INLANGUAGES { english, tamil }"
        )
        authors = {str(row[0]) for row in result.rows}
        assert authors == {"Nehru", "நேரு"}

    def test_higher_threshold_admits_nero(self, books_db):
        result = books_db.execute(
            "SELECT author FROM books WHERE author LEXEQUAL 'Nehru' "
            "THRESHOLD 0.5 INLANGUAGES { english }"
        )
        authors = {str(row[0]) for row in result.rows}
        assert "Nero" in authors

    def test_threshold_as_param(self, books_db):
        result = books_db.execute(
            "SELECT author FROM books WHERE author LEXEQUAL 'Nehru' "
            "THRESHOLD :e",
            e=0.25,
        )
        assert len(result) == 3


class TestFigure5Join:
    def test_equi_join_cross_language(self, books_db):
        result = books_db.execute(
            "select B1.Author from Books B1, Books B2 "
            "where B1.Author LexEQUAL B2.Author Threshold 0.25 "
            "and B1.Language <> B2.Language"
        )
        authors = {str(row[0]) for row in result.rows}
        # Nehru appears in three languages: each matches the other two.
        assert authors == {"Nehru", "नेहरु", "நேரு"}


class TestHelperUdfs:
    def test_ipa_of(self, books_db):
        result = books_db.execute(
            "SELECT ipa_of(author) FROM books WHERE language = 'hindi'"
        )
        assert result.scalar() == "nehru"

    def test_language_of(self, books_db):
        result = books_db.execute(
            "SELECT language_of(author) FROM books WHERE price = 99.0"
        )
        assert result.scalar() == "english"

    def test_plen_and_gpsid(self, books_db):
        result = books_db.execute(
            "SELECT plen_of(author), gpsid_of(author) FROM books "
            "WHERE language = 'english' AND price < 50"
        )
        plen, gpsid = result.rows[0]
        assert plen == 5
        assert isinstance(gpsid, int)

    def test_gpsid_join_equals_lexequal_candidates(self, books_db):
        """Figure 15 shape: index-key equality finds the Nehru group."""
        result = books_db.execute(
            "SELECT b1.author, b2.author FROM books b1, books b2 "
            "WHERE gpsid_of(b1.author) = gpsid_of(b2.author) "
            "AND b1.language <> b2.language "
            "AND lexequal(b1.author, b2.author, 0.25)"
        )
        assert len(result) == 6  # 3 names, ordered pairs both ways

    def test_lexequal_ipa_udf(self, books_db):
        result = books_db.execute(
            "SELECT COUNT(*) FROM books "
            "WHERE lexequal_ipa(ipa_of(author), 'nehru', 0.25)"
        )
        assert result.scalar() == 3

    def test_null_propagation(self, books_db):
        books_db.insert("books", (None, "Anon", 1.0, "english"))
        result = books_db.execute(
            "SELECT COUNT(*) FROM books WHERE author LEXEQUAL 'Nehru' "
            "THRESHOLD 0.25"
        )
        assert result.scalar() == 3  # NULL author is never TRUE


class TestNoResourceSemantics:
    def test_unsupported_language_is_null_not_error(self, matcher):
        db = Database()
        install_lexequal(db, matcher)
        db.create_table("t", [Column("name", SqlType.LANGTEXT)])
        db.insert("t", (LangText("dilithium", "klingon"),))
        result = db.execute(
            "SELECT COUNT(*) FROM t WHERE name LEXEQUAL 'Nehru' THRESHOLD 0.3"
        )
        assert result.scalar() == 0
