"""Tests for the BK metric tree and the metric-index strategy."""

import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    LexEqualMatcher,
    MetricIndexStrategy,
    NaiveUdfStrategy,
    NameCatalog,
)
from repro.errors import MatchConfigError
from repro.matching.bktree import BKTree
from repro.matching.costs import ClusteredCost, LevenshteinCost
from repro.matching.editdist import edit_distance

SYMBOLS = ["p", "b", "t", "d", "h", "ə", "a", "i", "u", "m", "n", "r", "s"]


def unit_tree(items) -> BKTree:
    tree = BKTree(lambda a, b: edit_distance(a, b), resolution=1.0)
    for tokens in items:
        tree.add(tokens, tokens)
    return tree


class TestBKTreeBasics:
    def test_empty_search(self):
        tree = BKTree(lambda a, b: edit_distance(a, b))
        assert tree.search("abc", 2.0) == []
        assert len(tree) == 0

    def test_exact_lookup(self):
        tree = unit_tree(["cat", "cot", "dog", "dot"])
        hits = tree.search("cat", 0.0)
        assert [item for _d, item in hits] == ["cat"]

    def test_range_query(self):
        tree = unit_tree(["cat", "cot", "dog", "dot", "cart"])
        hits = {item for _d, item in tree.search("cat", 1.0)}
        assert hits == {"cat", "cot", "cart"}

    def test_results_sorted_by_distance(self):
        tree = unit_tree(["cat", "cot", "dog", "cart", "coast"])
        distances = [d for d, _item in tree.search("cat", 5.0)]
        assert distances == sorted(distances)

    def test_duplicate_keys_accumulate(self):
        tree = BKTree(lambda a, b: edit_distance(a, b))
        tree.add("cat", 1)
        tree.add("cat", 2)
        assert len(tree) == 2
        assert {item for _d, item in tree.search("cat", 0.0)} == {1, 2}

    def test_invalid_resolution(self):
        with pytest.raises(MatchConfigError):
            BKTree(lambda a, b: 0.0, resolution=0.0)

    def test_height_grows_sublinearly(self):
        import random

        rng = random.Random(0)
        words = [
            "".join(rng.choice("abcdef") for _ in range(6))
            for _ in range(300)
        ]
        tree = unit_tree(words)
        assert tree.height() < 40

    def test_search_prunes(self):
        import random

        rng = random.Random(1)
        words = [
            "".join(rng.choice("abcdefgh") for _ in range(8))
            for _ in range(400)
        ]
        tree = unit_tree(words)
        tree.search(words[0], 1.0)
        assert tree.last_search_distance_calls < len(words)


class TestBKTreeExactness:
    @settings(max_examples=60, deadline=None)
    @given(
        items=st.lists(
            st.lists(st.sampled_from(SYMBOLS), max_size=7).map(tuple),
            min_size=1,
            max_size=30,
        ),
        query=st.lists(st.sampled_from(SYMBOLS), max_size=7).map(tuple),
        radius=st.sampled_from([0.0, 0.5, 1.0, 2.0, 3.5]),
        fractional=st.booleans(),
    )
    def test_range_search_equals_linear_scan(
        self, items, query, radius, fractional
    ):
        costs = ClusteredCost(0.25) if fractional else LevenshteinCost()
        tree = BKTree(lambda a, b: edit_distance(a, b, costs))
        for index, tokens in enumerate(items):
            tree.add(tokens, index)
        got = {item for _d, item in tree.search(query, radius)}
        expected = {
            index
            for index, tokens in enumerate(items)
            if edit_distance(query, tokens, costs) <= radius
        }
        assert got == expected


class TestMetricIndexStrategy:
    @pytest.fixture(scope="class")
    def catalog(self, small_lexicon):
        catalog = NameCatalog(LexEqualMatcher())
        for entry in small_lexicon:
            catalog.add(entry.name, entry.language, entry.tag, ipa=entry.ipa)
        return catalog

    def test_select_equals_naive(self, catalog):
        metric = MetricIndexStrategy(catalog)
        naive = NaiveUdfStrategy(catalog)
        for query in ["Aakash", "Krishna", "Aaron", "Amazon", "Zzyzx"]:
            assert [r.id for r in metric.select(query)] == [
                r.id for r in naive.select(query)
            ], query

    def test_join_equals_naive(self, catalog):
        metric = MetricIndexStrategy(catalog).join()
        naive = NaiveUdfStrategy(catalog).join()
        assert [(a.id, b.id) for a, b in metric] == [
            (a.id, b.id) for a, b in naive
        ]

    def test_search_visits_fewer_nodes_than_scan(self, catalog):
        metric = MetricIndexStrategy(catalog)
        metric.select("Krishna")
        assert metric.last_stats.udf_calls < len(catalog)

    def test_language_restriction(self, catalog):
        metric = MetricIndexStrategy(catalog)
        results = metric.select("Krishna", languages=("hindi",))
        assert all(r.language == "hindi" for r in results)


# -------------------------------------------------- deadline polling


class TestSearchDeadline:
    def test_search_aborts_on_expired_deadline(self):
        # The traversal itself must poll: with a distance callback that
        # never checks the deadline (injected or trivial metrics never
        # do), an expired deadline still cancels the search (LEX-C005).
        from repro import deadline
        from repro.errors import DeadlineExceededError

        tree = BKTree(lambda a, b: float(len(a) != len(b)))
        for word in ("cat", "cot", "dog", "dot", "cart", "coast"):
            tree.add(word, word)
        with deadline.deadline_scope(0.0):
            time.sleep(0.001)  # guarantee the deadline is in the past
            with pytest.raises(DeadlineExceededError):
                tree.search("cat", 5.0)

    def test_search_unaffected_without_deadline(self):
        tree = BKTree(lambda a, b: float(len(a) != len(b)))
        tree.add("cat", "cat")
        assert tree.search("cat", 1.0)
