"""Tests for values, schemas, heap tables and the catalog."""

import pytest

from repro.errors import ExecutionError, SchemaError, DatabaseError
from repro.minidb.catalog import Database
from repro.minidb.schema import Column, TableSchema
from repro.minidb.table import HeapTable
from repro.minidb.values import LangText, SqlType


class TestSqlTypes:
    def test_integer_accepts_int(self):
        assert SqlType.INTEGER.validate(5) == 5

    def test_integer_rejects_bool_and_str(self):
        with pytest.raises(SchemaError):
            SqlType.INTEGER.validate(True)
        with pytest.raises(SchemaError):
            SqlType.INTEGER.validate("5")

    def test_real_coerces_int(self):
        assert SqlType.REAL.validate(5) == 5.0
        assert isinstance(SqlType.REAL.validate(5), float)

    def test_text_accepts_langtext(self):
        assert SqlType.TEXT.validate(LangText("नेहरु", "hindi")) == "नेहरु"

    def test_langtext_requires_langtext(self):
        with pytest.raises(SchemaError):
            SqlType.LANGTEXT.validate("plain")
        value = LangText("नेहरु", "hindi")
        assert SqlType.LANGTEXT.validate(value) is value

    def test_null_always_ok(self):
        for t in SqlType:
            assert t.validate(None) is None

    def test_langtext_str(self):
        assert str(LangText("नेहरु", "hindi")) == "नेहरु"


class TestSchema:
    def test_position_lookup_case_insensitive(self):
        schema = TableSchema(
            "t", (Column("Author", SqlType.TEXT), Column("id", SqlType.INTEGER))
        )
        assert schema.position("author") == 0
        assert schema.position("ID") == 1

    def test_duplicate_column_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema(
                "t",
                (Column("a", SqlType.TEXT), Column("A", SqlType.TEXT)),
            )

    def test_unknown_column(self):
        schema = TableSchema("t", (Column("a", SqlType.TEXT),))
        with pytest.raises(SchemaError):
            schema.position("b")

    def test_validate_row_arity(self):
        schema = TableSchema("t", (Column("a", SqlType.TEXT),))
        with pytest.raises(SchemaError):
            schema.validate_row(("x", "y"))

    def test_not_null_enforced(self):
        schema = TableSchema(
            "t", (Column("a", SqlType.TEXT, nullable=False),)
        )
        with pytest.raises(SchemaError):
            schema.validate_row((None,))

    def test_invalid_column_name(self):
        with pytest.raises(SchemaError):
            Column("bad name!", SqlType.TEXT)


class TestHeapTable:
    @pytest.fixture()
    def table(self) -> HeapTable:
        schema = TableSchema(
            "names",
            (Column("id", SqlType.INTEGER), Column("name", SqlType.TEXT)),
        )
        return HeapTable(schema)

    def test_insert_fetch(self, table):
        rowid = table.insert((1, "Nehru"))
        assert table.fetch(rowid) == (1, "Nehru")

    def test_rowids_stable_after_delete(self, table):
        r0 = table.insert((0, "a"))
        r1 = table.insert((1, "b"))
        table.delete(r0)
        assert table.fetch(r1) == (1, "b")
        assert len(table) == 1

    def test_fetch_deleted_raises(self, table):
        rowid = table.insert((1, "x"))
        table.delete(rowid)
        with pytest.raises(ExecutionError):
            table.fetch(rowid)

    def test_fetch_out_of_range(self, table):
        with pytest.raises(ExecutionError):
            table.fetch(5)

    def test_scan_skips_tombstones(self, table):
        ids = table.insert_many([(i, str(i)) for i in range(5)])
        table.delete(ids[2])
        assert [row[0] for _rid, row in table.scan()] == [0, 1, 3, 4]


class TestDatabase:
    @pytest.fixture()
    def db(self) -> Database:
        db = Database()
        db.create_table(
            "names",
            [Column("id", SqlType.INTEGER), Column("name", SqlType.TEXT)],
        )
        return db

    def test_duplicate_table_rejected(self, db):
        with pytest.raises(SchemaError):
            db.create_table("names", [Column("x", SqlType.TEXT)])

    def test_drop_table(self, db):
        db.drop_table("names")
        assert not db.has_table("names")
        with pytest.raises(SchemaError):
            db.table("names")

    def test_index_maintained_on_insert(self, db):
        db.create_index("idx_name", "names", "name")
        rowid = db.insert("names", (1, "Nehru"))
        assert db.index("idx_name").tree.search("Nehru") == [rowid]

    def test_index_backfilled_on_create(self, db):
        rowid = db.insert("names", (1, "Nehru"))
        db.create_index("idx_late", "names", "name")
        assert db.index("idx_late").tree.search("Nehru") == [rowid]

    def test_index_maintained_on_delete(self, db):
        db.create_index("idx_name", "names", "name")
        rowid = db.insert("names", (1, "Nehru"))
        db.delete_row("names", rowid)
        assert db.index("idx_name").tree.search("Nehru") == []

    def test_index_on_lookup(self, db):
        db.create_index("idx_name", "names", "name")
        assert db.index_on("names", "name") is not None
        assert db.index_on("names", "id") is None

    def test_drop_index(self, db):
        db.create_index("idx_name", "names", "name")
        db.drop_index("idx_name")
        assert db.index_on("names", "name") is None
        with pytest.raises(SchemaError):
            db.index("idx_name")

    def test_drop_table_drops_indexes(self, db):
        db.create_index("idx_name", "names", "name")
        db.drop_table("names")
        with pytest.raises(SchemaError):
            db.index("idx_name")

    def test_udf_registry(self, db):
        db.register_udf("double", lambda x: x * 2)
        assert db.udf("DOUBLE")(21) == 42
        assert db.has_udf("double")
        with pytest.raises(DatabaseError):
            db.udf("missing")

    def test_udf_must_be_callable(self, db):
        with pytest.raises(DatabaseError):
            db.register_udf("bad", 42)
