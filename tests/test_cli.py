"""Tests for the command-line interface."""

import pytest

from repro import obs
from repro.cli import main


@pytest.fixture(autouse=True)
def _reset_metrics():
    """stats/--explain enable the global registry; keep tests isolated."""
    yield
    obs.disable()


class TestMatchCommand:
    def test_match_true_exit_code(self, capsys):
        code = main(["match", "Nehru", "नेहरु"])
        assert code == 0
        out = capsys.readouterr().out
        assert "true" in out

    def test_match_false_exit_code(self, capsys):
        code = main(["match", "Nehru", "Smith"])
        assert code == 1

    def test_match_with_overrides(self, capsys):
        code = main(
            ["match", "Nehru", "Nero", "--threshold", "0.6", "--cost", "0.0"]
        )
        assert code == 0


class TestLexiconCommands:
    def test_lexicon_build_writes_tsv(self, tmp_path, capsys):
        out = tmp_path / "lex.tsv"
        code = main(["lexicon", "build", "--out", str(out)])
        assert code == 0
        assert out.exists()
        header = out.read_text(encoding="utf-8").splitlines()[0]
        assert header.startswith("tag\t")

    def test_search_against_tsv(self, tmp_path, capsys):
        out = tmp_path / "lex.tsv"
        main(["lexicon", "build", "--out", str(out)])
        code = main(["search", "Nehru", "--lexicon", str(out)])
        assert code == 0
        captured = capsys.readouterr()
        assert "नेह्रु" in captured.out or "Nehru" in captured.out

    def test_search_language_filter(self, tmp_path, capsys):
        out = tmp_path / "lex.tsv"
        main(["lexicon", "build", "--out", str(out)])
        capsys.readouterr()  # drain the build message
        main(
            [
                "search",
                "Nehru",
                "--lexicon",
                str(out),
                "--languages",
                "hindi",
            ]
        )
        captured = capsys.readouterr()
        for line in captured.out.splitlines():
            if line.strip():
                assert "hindi" in line


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestQueryCommand:
    def test_query_rows(self, capsys):
        code = main(
            ["query", "SELECT author, title FROM books WHERE price < 20"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert out.splitlines()[0] == "author\ttitle"
        assert "Nehru" in out

    def test_query_lexequal_analyze_plan(self, capsys):
        code = main(
            [
                "query",
                "SELECT author FROM books "
                "WHERE author LEXEQUAL 'Nehru' THRESHOLD 0.25",
                "--analyze",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "RowidScan on books via qgram accelerator" in out
        assert "actual rows=" in out
        assert "Execution time:" in out

    def test_query_unaccelerated_plan(self, capsys):
        code = main(
            [
                "query",
                "SELECT author FROM books "
                "WHERE author LEXEQUAL 'Nehru' THRESHOLD 0.25",
                "--explain",
                "--accelerate",
                "none",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "SeqScan on books" in out
        assert "RowidScan" not in out


class TestStatsCommand:
    def test_stats_text(self, capsys):
        code = main(["stats"])
        assert code == 0
        out = capsys.readouterr().out
        assert "counters:" in out
        assert "matching.dp.calls" in out

    def test_stats_json(self, capsys):
        import json

        code = main(["stats", "--json"])
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["enabled"] is True
        assert data["counters"]["minidb.plans.accelerated"] >= 1

    def test_search_explain_prints_metrics(self, capsys):
        code = main(["search", "Nehru", "--explain"])
        assert code == 0
        err = capsys.readouterr().err
        assert "counters:" in err
        assert "matching.dp.calls" in err


class TestAnalysisCommands:
    def test_sweep_with_limit(self, capsys):
        code = main(
            ["sweep", "--limit", "10", "--thresholds", "0.2,0.3",
             "--costs", "0.25"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Recall vs threshold" in out
        assert "Precision vs threshold" in out

    def test_autotune_with_limit(self, capsys):
        code = main(["autotune", "--limit", "10"])
        assert code == 0
        out = capsys.readouterr().out
        assert "best: threshold=" in out

    def test_dismissals_with_limit(self, capsys):
        code = main(["dismissals", "--limit", "10"])
        assert code == 0
        out = capsys.readouterr().out
        assert "phonetic index dismisses" in out
