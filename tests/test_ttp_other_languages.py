"""Tests for the Greek, Spanish and French converters."""

import pytest

from repro.errors import TTPError
from repro.ttp.french import FrenchConverter
from repro.ttp.greek import GreekConverter
from repro.ttp.spanish import SpanishConverter


@pytest.fixture(scope="module")
def grk() -> GreekConverter:
    return GreekConverter()


@pytest.fixture(scope="module")
def spa() -> SpanishConverter:
    return SpanishConverter()


@pytest.fixture(scope="module")
def fra() -> FrenchConverter:
    return FrenchConverter()


class TestGreek:
    @pytest.mark.parametrize(
        "text,ipa",
        [
            ("Νερου", "nɛru"),
            ("Αθηνα", "aθina"),
            ("μπαρ", "bar"),
            ("ντοματα", "domata"),
            ("τζατζικι", "dzadziki"),
            ("ουζο", "uzo"),
        ],
    )
    def test_pronunciations(self, grk, text, ipa):
        assert grk.to_ipa(text) == ipa

    def test_digraph_vowels(self, grk):
        assert grk.to_phonemes("και") == ("k", "ɛ")
        assert grk.to_phonemes("ειναι") == ("i", "n", "ɛ")

    def test_av_ev_voicing(self, grk):
        # αυ before voiced -> av; before voiceless -> af
        assert grk.to_ipa("αυγο") == "avɣo"
        assert grk.to_ipa("αυτο") == "afto"

    def test_gamma_palatalizes(self, grk):
        assert grk.to_phonemes("γη")[0] == "j"
        assert grk.to_phonemes("γατα")[0] == "ɣ"

    def test_accents_folded(self, grk):
        assert grk.to_phonemes("Νίκος") == grk.to_phonemes("Νικος")

    def test_final_sigma(self, grk):
        assert grk.to_phonemes("Σαρρης")[-1] == "s"

    def test_unknown_character_raises(self, grk):
        with pytest.raises(TTPError):
            grk.to_phonemes("νεQρου")


class TestSpanish:
    @pytest.mark.parametrize(
        "text,ipa",
        [
            ("Jesus", "xesus"),
            ("Quito", "kito"),
            ("cerveza", "seɾbesa"),
            ("llama", "ʎama"),
            ("año", "aɲo"),
            ("guerra", "gera"),
            ("chico", "tʃiko"),
        ],
    )
    def test_pronunciations(self, spa, text, ipa):
        assert spa.to_ipa(text) == ipa

    def test_h_silent(self, spa):
        assert spa.to_ipa("hola") == "ola"

    def test_initial_r_trill_medial_tap(self, spa):
        assert spa.to_phonemes("rosa")[0] == "r"
        assert "ɾ" in spa.to_phonemes("pero")

    def test_v_is_b(self, spa):
        assert spa.to_phonemes("victor")[0] == "b"

    def test_language_dependent_vocalization_scenario(self, spa):
        """Paper Section 2.1: Jesus differs between English and Spanish."""
        from repro.ttp.english import EnglishConverter

        assert spa.to_phonemes("Jesus")[0] == "x"
        assert EnglishConverter().to_phonemes("Jesus")[0] == "dʒ"


class TestFrench:
    @pytest.mark.parametrize(
        "text,ipa",
        [
            ("René", "ɾəne"),
            ("École", "ekɔl"),
            ("Descartes", "dɛskaɾt"),
            ("Bordeaux", "bɔɾdo"),
            ("Chantal", "ʃɑ̃tal"),
        ],
    )
    def test_pronunciations(self, fra, text, ipa):
        assert fra.to_ipa(text) == ipa

    def test_silent_final_consonants(self, fra):
        assert fra.to_phonemes("Paris")[-1] != "s"
        assert fra.to_phonemes("petit")[-1] != "t"

    def test_nasal_vowels(self, fra):
        phonemes = fra.to_phonemes("bon")
        assert phonemes[-1].endswith("̃")

    def test_u_is_front_rounded(self, fra):
        assert "y" in fra.to_phonemes("du")

    def test_oi_is_wa(self, fra):
        assert fra.to_ipa("roi") == "ɾwa"

    def test_gn(self, fra):
        assert "ɲ" in fra.to_phonemes("Agnès")
