"""Tests for metrics, quality harness, timing harness and autotune."""

import pytest

from repro.core import (
    LexEqualMatcher,
    MatchConfig,
    NaiveUdfStrategy,
    NameCatalog,
    PhoneticIndexStrategy,
    QGramStrategy,
)
from repro.data.lexicon import build_lexicon
from repro.errors import DatasetError
from repro.evaluation.autotune import autotune
from repro.evaluation.metrics import (
    QualityCounts,
    ideal_match_count,
    recall_precision,
)
from repro.evaluation.quality import (
    evaluate_quality,
    phonetic_index_dismissals,
    strategy_quality,
    sweep_quality,
)
from repro.evaluation.report import (
    format_histogram,
    format_series,
    format_table,
    seconds,
)
from repro.evaluation.timing import time_join, time_select


class TestMetrics:
    def test_ideal_match_count(self):
        assert ideal_match_count([3, 3, 2]) == 3 + 3 + 1

    def test_recall_precision_formulas(self):
        recall, precision = recall_precision(
            correct_matches=9, reported_matches=12, group_sizes=[3, 3, 3, 3]
        )
        assert recall == 9 / 12
        assert precision == 9 / 12

    def test_counts_derived_fields(self):
        counts = QualityCounts(
            correct_matches=8, reported_matches=10, ideal_matches=9
        )
        assert counts.false_positives == 2
        assert counts.false_dismissals == 1
        assert counts.recall == pytest.approx(8 / 9)
        assert counts.precision == 0.8

    def test_empty_report_is_perfect_precision(self):
        counts = QualityCounts(0, 0, 5)
        assert counts.precision == 1.0
        assert counts.recall == 0.0

    def test_no_groups_raises(self):
        counts = QualityCounts(0, 0, 0)
        with pytest.raises(DatasetError):
            counts.recall


class TestQualityHarness:
    @pytest.fixture(scope="class")
    def lexicon(self):
        return build_lexicon(limit_per_domain=40)

    def test_evaluate_single_point(self, lexicon):
        point = evaluate_quality(lexicon, MatchConfig())
        assert 0.5 < point.recall <= 1.0
        assert 0.5 < point.precision <= 1.0

    def test_recall_monotone_in_threshold(self, lexicon):
        points = sweep_quality(lexicon, [0.1, 0.3, 0.5], [0.25])
        recalls = [p.recall for p in points]
        assert recalls == sorted(recalls)

    def test_precision_antitone_in_threshold(self, lexicon):
        points = sweep_quality(lexicon, [0.1, 0.3, 0.5], [0.25])
        precisions = [p.precision for p in points]
        assert precisions == sorted(precisions, reverse=True)

    def test_lower_cost_improves_recall(self, lexicon):
        """Figure 11 finding: recall improves with lower intra cost."""
        points = sweep_quality(lexicon, [0.3], [0.0, 0.5, 1.0])
        by_cost = {p.intra_cluster_cost: p.recall for p in points}
        assert by_cost[0.0] >= by_cost[0.5] >= by_cost[1.0]

    def test_sweep_is_cost_major(self, lexicon):
        points = sweep_quality(lexicon, [0.1, 0.2], [0.0, 1.0])
        assert [
            (p.intra_cluster_cost, p.threshold) for p in points
        ] == [(0.0, 0.1), (0.0, 0.2), (1.0, 0.1), (1.0, 0.2)]

    def test_dismissals_bounded(self, lexicon):
        dismissed, reported, rate = phonetic_index_dismissals(lexicon)
        assert 0 <= dismissed <= reported
        assert 0.0 <= rate < 0.5

    def test_dismissals_against_strategy_ground_truth(self, lexicon):
        """The harness's dismissal count must equal the actual gap
        between naive and phonetic-index join results."""
        matcher = LexEqualMatcher()
        catalog = NameCatalog(matcher)
        subset = [e for e in lexicon.entries if e.tag <= 15]
        for e in subset:
            catalog.add(e.name, e.language, e.tag, ipa=e.ipa)
        naive = {
            (a.id, b.id)
            for a, b in NaiveUdfStrategy(catalog).join(
                cross_language_only=False
            )
        }
        indexed = {
            (a.id, b.id)
            for a, b in PhoneticIndexStrategy(catalog).join(
                cross_language_only=False
            )
        }
        from repro.data.lexicon import MultiscriptLexicon

        sub_lex = MultiscriptLexicon(subset)
        dismissed, reported, _rate = phonetic_index_dismissals(sub_lex)
        assert reported == len(naive)
        assert dismissed == len(naive) - len(indexed)


class TestGoldenStrategyQuality:
    """Pinned Figure 11/12 quality per strategy on the seeded lexicon.

    These numbers are golden: ``build_lexicon(limit_per_domain=25)``
    under the default :class:`MatchConfig` is fully deterministic, so a
    change here means the lexicon build, the matching semantics, the
    grouped key, or the embedding prefilter changed — and that change
    must be deliberate, reviewed against the floors in
    :mod:`repro.perf.gates`, never silent.  The exact strategies are
    pinned *without* tolerance (they share the full-scan result set by
    construction); the lossy ``ann`` numbers get a hair of tolerance so
    a deliberate embedding retune can move candidate fractions within
    the recall floor without re-pinning to 16 digits.
    """

    @pytest.fixture(scope="class")
    def by_name(self, small_lexicon):
        quality = strategy_quality(small_lexicon, MatchConfig())
        return {q.strategy: q for q in quality}

    def test_exact_strategies_are_lossless(self, by_name):
        for name in ("naive", "qgram", "metric"):
            q = by_name[name]
            assert q.recall_vs_exact == 1.0, name
            assert q.candidate_fraction == 1.0, name
            assert q.recall == pytest.approx(0.8888888888888888), name
            assert q.precision == 1.0, name

    def test_phonetic_index_golden(self, by_name):
        q = by_name["index"]
        assert q.recall_vs_exact == pytest.approx(0.9444444444444444)
        assert q.candidate_fraction == pytest.approx(
            0.015489609692508243
        )
        assert q.recall == pytest.approx(0.8395061728395061)
        assert q.precision == 1.0

    def test_ann_prefilter_golden(self, by_name):
        q = by_name["ann"]
        # On this lexicon the "cost <= 2" radius loses nothing at all;
        # tolerance covers deliberate retunes, the gate floor (0.98)
        # still catches real regressions on the full harness.
        assert q.recall_vs_exact == pytest.approx(1.0, abs=0.02)
        assert q.recall_vs_exact >= by_name["index"].recall_vs_exact
        assert q.candidate_fraction == pytest.approx(
            0.06333870101986044, rel=0.05
        )
        assert q.recall == pytest.approx(0.8888888888888888, abs=0.02)
        assert q.precision == 1.0

    def test_ann_prefilter_narrows_candidates(self, by_name):
        # The whole point of the tier: far fewer verifications than a
        # scan, far better recall than grouped-key equality.
        assert by_name["ann"].candidate_fraction < 0.2


class TestTiming:
    def test_time_select_accumulates(self, nehru_catalog):
        run = time_select(
            NaiveUdfStrategy(nehru_catalog), ["Nehru", "Gandhi"]
        )
        assert run.operation == "select"
        assert run.seconds > 0
        assert run.result_count >= 4
        assert run.stats.udf_calls == 2 * len(nehru_catalog)
        assert run.per_query(2) == pytest.approx(run.seconds / 2)

    def test_time_join(self, nehru_catalog):
        run = time_join(QGramStrategy(nehru_catalog))
        assert run.operation == "join"
        assert run.result_count > 0

    def test_filters_do_less_work(self, nehru_catalog):
        naive = time_select(NaiveUdfStrategy(nehru_catalog), ["Nehru"])
        qgram = time_select(QGramStrategy(nehru_catalog), ["Nehru"])
        assert qgram.stats.udf_calls < naive.stats.udf_calls


class TestAutotune:
    def test_autotune_finds_knee(self):
        lexicon = build_lexicon(limit_per_domain=30)
        result = autotune(
            lexicon,
            thresholds=[0.1, 0.25, 0.4],
            intra_cluster_costs=[0.25, 1.0],
        )
        assert result.best in result.sweep
        assert result.config.threshold == result.best.threshold
        # The knee should prefer the discounted cost over Levenshtein.
        assert result.config.intra_cluster_cost == 0.25

    def test_custom_objective(self):
        lexicon = build_lexicon(limit_per_domain=20)
        result = autotune(
            lexicon,
            thresholds=[0.1, 0.5],
            intra_cluster_costs=[0.25],
            objective=lambda p: 1.0 - p.recall,  # maximize recall
        )
        assert result.best.threshold == 0.5


class TestReport:
    def test_format_table_aligns(self):
        text = format_table(
            ["Query", "Time"], [["Scan", "0.59 s"], ["Join", "0.20 s"]],
            title="Table 1",
        )
        lines = text.splitlines()
        assert lines[0] == "Table 1"
        assert "Query" in lines[1]
        assert len(lines) == 5

    def test_format_series(self):
        text = format_series(
            "Recall", "e", {"cost=0": [(0.1, 0.5), (0.2, 0.8)]}
        )
        assert "0.1" in text and "0.500" in text

    def test_format_histogram(self):
        text = format_histogram("Lengths", {3: 5, 4: 10})
        assert "#" in text

    def test_format_histogram_empty(self):
        assert "empty" in format_histogram("x", {})

    def test_seconds_scales(self):
        assert seconds(0.0000005).endswith("µs")
        assert seconds(0.5).endswith("ms")
        assert seconds(2.0).endswith("s")
