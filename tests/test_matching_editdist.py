"""Tests for the dynamic-programming edit distance (paper Figure 8)."""

import pytest

from repro.matching.costs import ClusteredCost, LevenshteinCost
from repro.matching.editdist import (
    distance_matrix,
    edit_distance,
    edit_distance_within,
)


class TestClassicDistance:
    @pytest.mark.parametrize(
        "a,b,expected",
        [
            ("", "", 0.0),
            ("abc", "", 3.0),
            ("", "abc", 3.0),
            ("kitten", "sitting", 3.0),
            ("flaw", "lawn", 2.0),
            ("abc", "abc", 0.0),
            ("abc", "abd", 1.0),
            ("abc", "acb", 2.0),
        ],
    )
    def test_known_values(self, a, b, expected):
        assert edit_distance(a, b) == expected

    def test_symmetry(self):
        pairs = [("kitten", "sitting"), ("abc", "xyz"), ("a", "abcd")]
        for a, b in pairs:
            assert edit_distance(a, b) == edit_distance(b, a)

    def test_triangle_inequality(self):
        words = ["kitten", "sitting", "mitten", "bitten", ""]
        for a in words:
            for b in words:
                for c in words:
                    assert edit_distance(a, c) <= edit_distance(
                        a, b
                    ) + edit_distance(b, c)

    def test_distance_matrix_corner(self):
        matrix = distance_matrix("kitten", "sitting")
        assert matrix[6][7] == 3.0
        assert matrix[0][0] == 0.0
        assert matrix[3][0] == 3.0


class TestClusteredDistance:
    def test_intra_cluster_substitution_cheap(self):
        costs = ClusteredCost(0.25)
        assert edit_distance(("p", "a"), ("b", "a"), costs) == 0.25

    def test_weak_deletion_cheap(self):
        costs = ClusteredCost(0.25, weak_indel_cost=0.5)
        assert edit_distance(("n", "e", "h"), ("n", "e"), costs) == 0.5

    def test_mixed_operations(self):
        costs = ClusteredCost(0.25, weak_indel_cost=0.5, vowel_cross_cost=0.5)
        # p->b (0.25) plus delete h (0.5)
        assert edit_distance(("p", "h", "a"), ("b", "a"), costs) == 0.75

    def test_cheaper_path_found_over_greedy(self):
        # The DP must consider substitution vs indel tradeoffs.
        costs = ClusteredCost(0.0)
        assert edit_distance(("p",), ("b",), costs) == 0.0


class TestBandedDistance:
    def test_agrees_with_full_when_within(self):
        assert edit_distance_within("kitten", "sitting", 3.0) == 3.0

    def test_none_when_exceeding(self):
        assert edit_distance_within("kitten", "sitting", 2.9) is None

    def test_zero_budget_identical(self):
        assert edit_distance_within("abc", "abc", 0.0) == 0.0
        assert edit_distance_within("abc", "abd", 0.0) is None

    def test_negative_budget(self):
        assert edit_distance_within("a", "a", -1.0) is None

    def test_empty_strings(self):
        assert edit_distance_within("", "", 0.0) == 0.0
        assert edit_distance_within("", "ab", 2.0) == 2.0
        assert edit_distance_within("ab", "", 1.0) is None

    def test_length_filter_respects_weak_indels(self):
        # With weak vowels (cost 0.5), a length gap of 2 fits budget 1.0.
        costs = ClusteredCost(0.25, weak_indel_cost=0.5)
        got = edit_distance_within(
            ("n", "ə", "ə"), ("n",), 1.0, costs
        )
        assert got == 1.0

    @pytest.mark.parametrize("seed", range(5))
    def test_fuzz_against_full_dp(self, seed):
        import random

        rng = random.Random(seed)
        symbols = ["p", "b", "t", "d", "h", "ə", "a", "i", "u", "m", "n", "r"]
        costs_options = [
            LevenshteinCost(),
            ClusteredCost(0.25),
            ClusteredCost(0.5, weak_indel_cost=1.0, vowel_cross_cost=1.0),
            ClusteredCost(0.0),
        ]
        for _ in range(300):
            a = [rng.choice(symbols) for _ in range(rng.randint(0, 8))]
            b = [rng.choice(symbols) for _ in range(rng.randint(0, 8))]
            costs = rng.choice(costs_options)
            budget = rng.choice([0.0, 0.25, 0.5, 1.0, 2.0, 3.5])
            full = edit_distance(a, b, costs)
            banded = edit_distance_within(a, b, budget, costs)
            if full <= budget + 1e-12:
                assert banded is not None
                assert abs(banded - full) < 1e-9
            else:
                assert banded is None
