"""Tests for the tagged lexicon and the synthetic performance dataset."""

import pytest

from repro.data.generator import (
    dataset_length_histogram,
    dataset_length_stats,
    generate_performance_dataset,
)
from repro.data.lexicon import (
    COLLISION_EXCLUSIONS,
    MultiscriptLexicon,
    build_lexicon,
)
from repro.errors import DatasetError
from repro.phonetics.parse import parse_ipa


class TestLexiconBuild:
    def test_three_languages_per_group(self, small_lexicon):
        for tag, entries in small_lexicon.groups().items():
            assert sorted(e.language for e in entries) == [
                "english",
                "hindi",
                "tamil",
            ], tag

    def test_tags_are_group_consistent(self, small_lexicon):
        for entries in small_lexicon.groups().values():
            assert len({e.tag for e in entries}) == 1

    def test_ipa_is_parseable_and_folded(self, small_lexicon):
        from repro.phonetics.folding import fold_phonemes

        for entry in small_lexicon:
            phonemes = parse_ipa(entry.ipa)
            assert phonemes
            assert fold_phonemes(phonemes) == phonemes

    def test_scripts_match_languages(self, small_lexicon):
        from repro.ttp.registry import detect_language

        for entry in small_lexicon:
            assert detect_language(entry.name) == entry.language

    def test_domains_cover_three_sources(self):
        lexicon = build_lexicon(limit_per_domain=5)
        domains = {e.domain for e in lexicon}
        assert domains == {"indian", "american", "generic"}

    def test_exclusions_respected_by_default(self):
        lexicon = build_lexicon(limit_per_domain=None)
        names = {e.name for e in lexicon if e.language == "english"}
        assert not (names & COLLISION_EXCLUSIONS)

    def test_exclusions_can_be_disabled(self):
        lexicon = build_lexicon(
            limit_per_domain=60, exclude_collisions=False
        )
        names = {e.name for e in lexicon if e.language == "english"}
        assert names & COLLISION_EXCLUSIONS

    def test_unknown_domain_rejected(self):
        with pytest.raises(DatasetError):
            build_lexicon(domains=("martian",))

    def test_average_lengths_near_paper(self):
        lexicon = build_lexicon()
        lex_len, pho_len = lexicon.average_lengths()
        # Paper: 7.35 / 7.16.  Ours are a bit shorter but the phonemic
        # form must track the lexicographic one.
        assert 5.0 < lex_len < 9.0
        assert 4.5 < pho_len <= lex_len + 1.0

    def test_length_histogram_sums_to_size(self, small_lexicon):
        histogram = small_lexicon.length_histogram("lexicographic")
        assert sum(histogram.values()) == len(small_lexicon)
        histogram = small_lexicon.length_histogram("phonemic")
        assert sum(histogram.values()) == len(small_lexicon)

    def test_histogram_kind_validation(self, small_lexicon):
        with pytest.raises(DatasetError):
            small_lexicon.length_histogram("bogus")


class TestLexiconIO:
    def test_tsv_roundtrip(self, small_lexicon, tmp_path):
        path = tmp_path / "lexicon.tsv"
        small_lexicon.save_tsv(path)
        loaded = MultiscriptLexicon.load_tsv(path)
        assert len(loaded) == len(small_lexicon)
        assert loaded.entries[0] == small_lexicon.entries[0]

    def test_load_rejects_malformed(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("not a lexicon\n")
        with pytest.raises(DatasetError):
            MultiscriptLexicon.load_tsv(path)

    def test_empty_lexicon_rejected(self):
        with pytest.raises(DatasetError):
            MultiscriptLexicon([])


class TestGenerator:
    def test_target_size_met(self, small_lexicon):
        dataset = generate_performance_dataset(small_lexicon, 300)
        assert len(dataset) == 300

    def test_concatenation_construction(self, small_lexicon):
        dataset = generate_performance_dataset(small_lexicon, 30)
        by_language = {
            lang: {e.name for e in small_lexicon.by_language(lang)}
            for lang in small_lexicon.languages()
        }
        for item in dataset:
            # name must decompose into two same-language lexicon names
            names = by_language[item.language]
            assert any(
                item.name.startswith(first)
                and item.name[len(first):] in names
                for first in names
            )

    def test_ipa_concatenation(self, small_lexicon):
        dataset = generate_performance_dataset(small_lexicon, 30)
        for item in dataset:
            parse_ipa(item.ipa)  # must stay parseable

    def test_deterministic(self, small_lexicon):
        a = generate_performance_dataset(small_lexicon, 100)
        b = generate_performance_dataset(small_lexicon, 100)
        assert a == b

    def test_no_self_concatenation_pairs_repeated(self, small_lexicon):
        dataset = generate_performance_dataset(small_lexicon, 200)
        assert len(set(dataset)) == len(dataset)

    def test_lengths_roughly_double_lexicon(self, small_lexicon):
        dataset = generate_performance_dataset(small_lexicon, 120)
        lex_avg, pho_avg = dataset_length_stats(dataset)
        base_lex, base_pho = small_lexicon.average_lengths()
        assert lex_avg == pytest.approx(2 * base_lex, rel=0.25)
        assert pho_avg == pytest.approx(2 * base_pho, rel=0.25)

    def test_histogram(self, small_lexicon):
        dataset = generate_performance_dataset(small_lexicon, 50)
        histogram = dataset_length_histogram(dataset)
        assert sum(histogram.values()) == 50

    def test_invalid_target(self, small_lexicon):
        with pytest.raises(DatasetError):
            generate_performance_dataset(small_lexicon, 0)

    def test_oversized_target_rejected(self, small_lexicon):
        huge = 10 ** 9
        with pytest.raises(DatasetError):
            generate_performance_dataset(small_lexicon, huge)
