"""Additional executor coverage: Materialize, FnFilter, RowidScan."""

import pytest

from repro.errors import ExecutionError
from repro.minidb.catalog import Database
from repro.minidb.executor import (
    FnFilter,
    Limit,
    Materialize,
    RowidScan,
    SeqScan,
)
from repro.minidb.expr import RowLayout
from repro.minidb.schema import Column
from repro.minidb.values import SqlType


@pytest.fixture()
def db() -> Database:
    db = Database()
    db.create_table(
        "t", [Column("id", SqlType.INTEGER), Column("v", SqlType.TEXT)]
    )
    for i in range(5):
        db.insert("t", (i, f"v{i}"))
    return db


class TestMaterialize:
    def test_yields_given_rows(self):
        layout = RowLayout.for_table("q", ["x"])
        op = Materialize([(1,), (2,)], layout)
        assert list(op.rows()) == [(1,), (2,)]
        assert list(op.rows()) == [(1,), (2,)]  # re-iterable

    def test_layout_names(self):
        layout = RowLayout.for_table("q", ["x", "y"])
        op = Materialize([], layout)
        assert op.layout.names == ["q.x", "q.y"]


class TestFnFilter:
    def test_predicate_applied(self, db):
        scan = SeqScan(db.table("t"))
        out = FnFilter(scan, lambda row: row[0] % 2 == 0)
        assert [row[0] for row in out.rows()] == [0, 2, 4]

    def test_layout_passthrough(self, db):
        scan = SeqScan(db.table("t"))
        assert FnFilter(scan, bool).layout is scan.layout


class TestRowidScan:
    def test_fetches_listed_rowids_in_order(self, db):
        op = RowidScan(db.table("t"), [3, 1])
        assert [row[0] for row in op.rows()] == [3, 1]

    def test_empty_list(self, db):
        assert list(RowidScan(db.table("t"), []).rows()) == []

    def test_deleted_rowid_raises(self, db):
        db.delete_row("t", 2)
        op = RowidScan(db.table("t"), [2])
        with pytest.raises(ExecutionError):
            list(op.rows())


class TestLimitValidation:
    def test_negative_limit_rejected(self, db):
        scan = SeqScan(db.table("t"))
        with pytest.raises(ExecutionError):
            Limit(scan, -1)
