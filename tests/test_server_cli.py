"""Tests for the ``serve`` / ``client`` CLI front-ends and error paths."""

import json
import socket

import pytest

from repro import obs
from repro.cli import main
from repro.server import BackgroundServer


@pytest.fixture(autouse=True)
def _reset_metrics():
    yield
    obs.disable()


@pytest.fixture(scope="module")
def server():
    with BackgroundServer() as bg:
        yield bg
    obs.disable()


def unused_port() -> int:
    """A port that was just free (nothing is listening on it)."""
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


class TestClientCommand:
    def test_ping(self, server, capsys):
        code = main(
            ["client", "--port", str(server.port), "ping"]
        )
        assert code == 0
        assert capsys.readouterr().out.strip() == "pong"

    def test_query(self, server, capsys):
        code = main(
            [
                "client",
                "--port",
                str(server.port),
                "query",
                "SELECT author, title FROM books "
                "WHERE author LEXEQUAL 'Nehru' THRESHOLD 0.25",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert captured.out.splitlines()[0] == "author\ttitle"
        assert "नेहरु" in captured.out
        assert "-- 3 rows" in captured.err

    def test_lexequal_exit_codes(self, server, capsys):
        assert (
            main(
                ["client", "--port", str(server.port),
                 "lexequal", "Nehru", "नेहरु"]
            )
            == 0
        )
        assert "-> true" in capsys.readouterr().out
        assert (
            main(
                ["client", "--port", str(server.port),
                 "lexequal", "Nehru", "Smith"]
            )
            == 1
        )
        assert "-> false" in capsys.readouterr().out

    def test_stats_json(self, server, capsys):
        code = main(["client", "--port", str(server.port), "stats"])
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["server"]["pool"]["max_inflight"] >= 1

    def test_connection_refused_one_line_diagnostic(self, capsys):
        code = main(
            ["client", "--port", str(unused_port()), "ping"]
        )
        assert code == 1
        err = capsys.readouterr().err
        assert err.startswith("error: ")
        assert len(err.strip().splitlines()) == 1  # no traceback

    def test_sql_error_one_line_diagnostic(self, server, capsys):
        code = main(
            ["client", "--port", str(server.port), "query", "SELEKT x"]
        )
        assert code == 1
        err = capsys.readouterr().err
        assert err.startswith("error: sql_error")
        assert len(err.strip().splitlines()) == 1


class TestServeCommand:
    def test_port_in_use_one_line_diagnostic(self, capsys):
        with socket.socket() as sock:
            sock.bind(("127.0.0.1", 0))
            sock.listen(1)
            port = sock.getsockname()[1]
            code = main(["serve", "--port", str(port)])
        assert code == 1
        err = capsys.readouterr().err
        assert err.startswith("error: cannot listen on")
        assert len(err.strip().splitlines()) == 1
