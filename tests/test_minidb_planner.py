"""End-to-end SQL tests through the planner and executor."""

import pytest

from repro.errors import PlanningError
from repro.minidb.catalog import Database


@pytest.fixture()
def db() -> Database:
    db = Database()
    db.execute(
        "CREATE TABLE books (id INTEGER, author TEXT, title TEXT, "
        "price REAL, language TEXT)"
    )
    db.execute(
        "INSERT INTO books VALUES "
        "(1, 'Nehru', 'Discovery of India', 9.95, 'english'), "
        "(2, 'Nero', 'Coronation', 99.0, 'english'), "
        "(3, 'Sarma', 'Vedas', 5.0, 'english'), "
        "(4, 'Nehru', 'Glimpses', 12.0, 'english'), "
        "(5, 'Zafar', 'Diwan', 7.5, 'urdu')"
    )
    db.execute("CREATE TABLE sales (author TEXT, qty INTEGER)")
    db.execute(
        "INSERT INTO sales VALUES ('Nehru', 10), ('Nero', 3), ('Ghalib', 2)"
    )
    return db


class TestSelect:
    def test_projection_and_filter(self, db):
        result = db.execute(
            "SELECT title FROM books WHERE price < 10 ORDER BY title"
        )
        assert result.rows == [
            ("Discovery of India",),
            ("Diwan",),
            ("Vedas",),
        ]

    def test_star(self, db):
        result = db.execute("SELECT * FROM books LIMIT 1")
        assert result.columns == ["id", "author", "title", "price", "language"]

    def test_expressions_in_select(self, db):
        result = db.execute(
            "SELECT price * 2 AS double_price FROM books WHERE id = 1"
        )
        assert result.scalar() == 19.9

    def test_between_and_in(self, db):
        result = db.execute(
            "SELECT id FROM books WHERE price BETWEEN 5 AND 10 "
            "AND language IN ('english', 'urdu') ORDER BY id"
        )
        assert [r[0] for r in result.rows] == [1, 3, 5]

    def test_params(self, db):
        result = db.execute(
            "SELECT COUNT(*) FROM books WHERE price > :floor", floor=8.0
        )
        assert result.scalar() == 3

    def test_distinct(self, db):
        result = db.execute("SELECT DISTINCT author FROM books")
        assert len(result) == 4

    def test_order_by_expression_not_in_select(self, db):
        result = db.execute("SELECT title FROM books ORDER BY price DESC")
        assert result.rows[0] == ("Coronation",)

    def test_builtin_functions(self, db):
        result = db.execute(
            "SELECT upper(author) FROM books WHERE length(author) = 4"
        )
        assert result.rows == [("NERO",)]

    def test_is_null(self, db):
        db.execute("INSERT INTO books VALUES (6, null, 'Anon', 1.0, 'english')")
        result = db.execute("SELECT id FROM books WHERE author IS NULL")
        assert result.rows == [(6,)]


class TestIndexUsage:
    def test_equality_uses_index(self, db):
        db.execute("CREATE INDEX idx_author ON books (author)")
        from repro.minidb.executor import IndexEqualScan
        from repro.minidb.planner import plan_select
        from repro.minidb.sql import parse

        stmt = parse("SELECT id FROM books WHERE author = 'Nehru'")
        plan = plan_select(db, stmt, {})

        def find_scan(op):
            found = []
            stack = [op]
            while stack:
                node = stack.pop()
                if isinstance(node, IndexEqualScan):
                    found.append(node)
                for attr in ("child", "outer", "inner", "left", "right"):
                    nxt = getattr(node, attr, None)
                    if nxt is not None:
                        stack.append(nxt)
            return found

        assert find_scan(plan), "planner should use the index"
        result = db.execute("SELECT id FROM books WHERE author = 'Nehru'")
        assert sorted(r[0] for r in result.rows) == [1, 4]


class TestJoins:
    def test_hash_equi_join(self, db):
        result = db.execute(
            "SELECT b.title, s.qty FROM books b, sales s "
            "WHERE b.author = s.author AND s.qty > 2 ORDER BY b.title"
        )
        assert result.rows == [
            ("Coronation", 3),
            ("Discovery of India", 10),
            ("Glimpses", 10),
        ]

    def test_cross_join_with_residual(self, db):
        result = db.execute(
            "SELECT COUNT(*) FROM books b, sales s WHERE b.price > 50"
        )
        assert result.scalar() == 3  # 1 book x 3 sales rows

    def test_self_join(self, db):
        result = db.execute(
            "SELECT b1.id, b2.id FROM books b1, books b2 "
            "WHERE b1.author = b2.author AND b1.id < b2.id"
        )
        assert result.rows == [(1, 4)]

    def test_duplicate_alias_rejected(self, db):
        with pytest.raises(PlanningError):
            db.execute("SELECT a.id FROM books a, sales a")


class TestGroupBy:
    def test_group_by_having(self, db):
        result = db.execute(
            "SELECT author, COUNT(*) AS n, SUM(price) FROM books "
            "GROUP BY author HAVING COUNT(*) > 1"
        )
        assert result.rows == [("Nehru", 2, 21.95)]

    def test_global_aggregates(self, db):
        result = db.execute("SELECT COUNT(*), MIN(price), MAX(price) FROM books")
        assert result.rows == [(5, 5.0, 99.0)]

    def test_group_by_with_order(self, db):
        result = db.execute(
            "SELECT language, COUNT(*) FROM books GROUP BY language "
            "ORDER BY COUNT(*) DESC"
        )
        assert result.rows[0] == ("english", 4)

    def test_ungrouped_column_rejected(self, db):
        with pytest.raises(PlanningError):
            db.execute("SELECT author, COUNT(*) FROM books GROUP BY language")

    def test_having_without_group_by(self, db):
        result = db.execute(
            "SELECT COUNT(*) FROM books HAVING COUNT(*) > 100"
        )
        assert result.rows == []


class TestDml:
    def test_insert_returns_count(self, db):
        count = db.execute("INSERT INTO sales VALUES ('A', 1), ('B', 2)")
        assert count == 2

    def test_insert_with_params(self, db):
        db.execute(
            "INSERT INTO sales VALUES (:author, :qty)", author="X", qty=7
        )
        result = db.execute("SELECT qty FROM sales WHERE author = 'X'")
        assert result.scalar() == 7

    def test_create_and_drop(self, db):
        db.execute("CREATE TABLE tmp (x INTEGER)")
        db.execute("DROP TABLE tmp")
        assert not db.has_table("tmp")


class TestResultSet:
    def test_to_dicts(self, db):
        result = db.execute("SELECT id, author FROM books WHERE id = 1")
        assert result.to_dicts() == [{"id": 1, "author": "Nehru"}]

    def test_first_and_len(self, db):
        result = db.execute("SELECT id FROM books ORDER BY id")
        assert result.first() == (1,)
        assert len(result) == 5

    def test_scalar_requires_1x1(self, db):
        result = db.execute("SELECT id FROM books")
        with pytest.raises(PlanningError):
            result.scalar()
