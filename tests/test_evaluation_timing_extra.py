"""Coverage for the multi-strategy timing harness."""

from repro.core import (
    ExactStrategy,
    NaiveUdfStrategy,
    PhoneticIndexStrategy,
    QGramStrategy,
)
from repro.evaluation.timing import time_strategies


class TestTimeStrategies:
    def test_table_shape(self, nehru_catalog):
        strategies = [
            ExactStrategy(nehru_catalog),
            NaiveUdfStrategy(nehru_catalog),
            QGramStrategy(nehru_catalog),
            PhoneticIndexStrategy(nehru_catalog),
        ]
        runs = time_strategies(strategies, ["Nehru", "Gandhi"])
        selects = [r for r in runs if r.operation == "select"]
        joins = [r for r in runs if r.operation == "join"]
        assert len(selects) == 4
        assert len(joins) == 4
        assert {r.strategy for r in selects} == {
            "exact",
            "naive-udf",
            "qgram",
            "phonetic-index",
        }

    def test_join_can_be_skipped(self, nehru_catalog):
        runs = time_strategies(
            [NaiveUdfStrategy(nehru_catalog)],
            ["Nehru"],
            include_join=False,
        )
        assert all(r.operation == "select" for r in runs)

    def test_times_are_positive(self, nehru_catalog):
        runs = time_strategies([ExactStrategy(nehru_catalog)], ["Nehru"])
        assert all(r.seconds > 0 for r in runs)
