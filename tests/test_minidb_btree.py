"""Tests for the B+ tree index, including hypothesis-driven invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DatabaseError
from repro.minidb.btree import BPlusTree


class TestBasics:
    def test_insert_and_search(self):
        tree = BPlusTree(order=4)
        tree.insert(5, "a")
        tree.insert(5, "b")
        tree.insert(3, "c")
        assert sorted(tree.search(5)) == ["a", "b"]
        assert tree.search(3) == ["c"]
        assert tree.search(99) == []
        assert len(tree) == 3

    def test_contains(self):
        tree = BPlusTree()
        tree.insert(1, "x")
        assert tree.contains(1)
        assert not tree.contains(2)

    def test_order_validation(self):
        with pytest.raises(DatabaseError):
            BPlusTree(order=3)

    def test_many_inserts_stay_sorted(self):
        tree = BPlusTree(order=4)
        for i in range(500, 0, -1):
            tree.insert(i, i)
        keys = list(tree.keys())
        assert keys == sorted(keys)
        tree.check_invariants()

    def test_string_keys(self):
        tree = BPlusTree(order=4)
        for word in ["pear", "apple", "mango", "fig", "apple"]:
            tree.insert(word, word)
        assert list(tree.keys()) == ["apple", "fig", "mango", "pear"]
        assert len(tree.search("apple")) == 2


class TestRangeScan:
    @pytest.fixture()
    def tree(self) -> BPlusTree:
        tree = BPlusTree(order=4)
        for i in range(0, 100, 2):  # even keys 0..98
            tree.insert(i, i)
        return tree

    def test_inclusive_range(self, tree):
        got = [k for k, _v in tree.range_scan(10, 20)]
        assert got == [10, 12, 14, 16, 18, 20]

    def test_exclusive_bounds(self, tree):
        got = [
            k
            for k, _v in tree.range_scan(
                10, 20, low_inclusive=False, high_inclusive=False
            )
        ]
        assert got == [12, 14, 16, 18]

    def test_open_ends(self, tree):
        assert len(list(tree.range_scan())) == 50
        assert [k for k, _ in tree.range_scan(low=96)] == [96, 98]
        assert [k for k, _ in tree.range_scan(high=2)] == [0, 2]

    def test_bounds_between_keys(self, tree):
        got = [k for k, _v in tree.range_scan(11, 15)]
        assert got == [12, 14]

    def test_empty_range(self, tree):
        assert list(tree.range_scan(13, 13)) == []


class TestDelete:
    def test_delete_existing(self):
        tree = BPlusTree(order=4)
        tree.insert(1, "a")
        tree.insert(1, "b")
        assert tree.delete(1, "a")
        assert tree.search(1) == ["b"]
        assert tree.delete(1, "b")
        assert tree.search(1) == []
        assert len(tree) == 0

    def test_delete_missing_returns_false(self):
        tree = BPlusTree(order=4)
        tree.insert(1, "a")
        assert not tree.delete(2, "a")
        assert not tree.delete(1, "zz")

    def test_mass_delete_keeps_invariants(self):
        import random

        rng = random.Random(5)
        tree = BPlusTree(order=4)
        entries = [(rng.randint(0, 50), i) for i in range(800)]
        for k, v in entries:
            tree.insert(k, v)
        rng.shuffle(entries)
        for i, (k, v) in enumerate(entries):
            assert tree.delete(k, v)
            if i % 97 == 0:
                tree.check_invariants()
        tree.check_invariants()
        assert len(tree) == 0


@settings(max_examples=60, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["insert", "delete"]),
            st.integers(min_value=0, max_value=30),
            st.integers(min_value=0, max_value=5),
        ),
        max_size=300,
    )
)
def test_btree_matches_reference_model(ops):
    """Property: the B+ tree behaves like a dict of multisets."""
    tree = BPlusTree(order=4)
    reference: dict[int, list[int]] = {}
    for op, key, value in ops:
        if op == "insert":
            tree.insert(key, value)
            reference.setdefault(key, []).append(value)
        else:
            expected = key in reference and value in reference[key]
            assert tree.delete(key, value) == expected
            if expected:
                reference[key].remove(value)
                if not reference[key]:
                    del reference[key]
    tree.check_invariants()
    assert sorted(tree.keys()) == sorted(reference.keys())
    for key, values in reference.items():
        assert sorted(tree.search(key)) == sorted(values)
    scanned = [(k, v) for k, v in tree.range_scan()]
    assert len(scanned) == sum(len(v) for v in reference.values())


class TestBulkLoad:
    """bulk_load must be indistinguishable from incremental insertion."""

    def test_matches_incremental_insert(self):
        items = [(k, [k * 10, k * 10 + 1]) for k in range(500)]
        loaded = BPlusTree.bulk_load(items, order=8)
        loaded.check_invariants()
        reference = BPlusTree(order=8)
        for key, bucket in items:
            for value in bucket:
                reference.insert(key, value)
        assert len(loaded) == len(reference)
        assert list(loaded.items()) == list(reference.items())
        assert list(loaded.range_scan()) == list(reference.range_scan())

    def test_empty_and_single(self):
        empty = BPlusTree.bulk_load([], order=4)
        empty.check_invariants()
        assert len(empty) == 0
        one = BPlusTree.bulk_load([("k", ["v"])], order=4)
        one.check_invariants()
        assert one.search("k") == ["v"]

    def test_rejects_unsorted_or_duplicate_keys(self):
        with pytest.raises(DatabaseError):
            BPlusTree.bulk_load([(2, [1]), (1, [1])], order=4)
        with pytest.raises(DatabaseError):
            BPlusTree.bulk_load([(1, [1]), (1, [2])], order=4)
        with pytest.raises(DatabaseError):
            BPlusTree.bulk_load([(1, [])], order=4)

    def test_loaded_tree_accepts_mutation(self):
        items = [(k, [k]) for k in range(0, 200, 2)]
        tree = BPlusTree.bulk_load(items, order=5)
        for k in range(1, 200, 2):
            tree.insert(k, k)
        for k in range(0, 200, 4):
            assert tree.delete(k, k)
        tree.check_invariants()
        assert len(tree) == 150

    @settings(max_examples=40, deadline=None)
    @given(
        size=st.integers(min_value=0, max_value=400),
        order=st.sampled_from([4, 5, 8, 64]),
    )
    def test_bulk_load_invariants_property(self, size, order):
        items = [(k, [k]) for k in range(size)]
        tree = BPlusTree.bulk_load(items, order=order)
        tree.check_invariants()
        assert len(tree) == size
        assert list(tree.keys()) == [k for k, _ in items]
