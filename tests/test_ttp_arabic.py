"""Tests for the Arabic (abjad) converter."""

import pytest

from repro.core import LexEqualMatcher, MatchConfig
from repro.errors import TTPError
from repro.ttp.arabic import ArabicConverter


@pytest.fixture(scope="module")
def ara() -> ArabicConverter:
    return ArabicConverter()


class TestArabicBasics:
    def test_consonant_skeleton(self, ara):
        phonemes = ara.to_phonemes("نهرو")
        consonants = [p for p in phonemes if p not in ("ə", "a", "aː", "uː")]
        assert consonants[:3] == ["n", "h", "r"]

    def test_epenthesis_breaks_clusters(self, ara):
        # محمد is written m-h-m-d; vowels are inferred.
        phonemes = ara.to_phonemes("محمد")
        for first, second in zip(phonemes, phonemes[1:]):
            from repro.phonetics.inventory import get_phoneme

            assert not (
                get_phoneme(first).is_consonant
                and get_phoneme(second).is_consonant
            )

    def test_long_vowels_honoured(self, ara):
        assert "aː" in ara.to_phonemes("سالم")   # alef
        assert "uː" in ara.to_phonemes("نور")    # waw after consonant
        assert "iː" in ara.to_phonemes("سليم".replace("سليم", "كريم"))

    def test_waw_yeh_initial_are_glides(self, ara):
        assert ara.to_phonemes("وليد")[0] == "w"
        assert ara.to_phonemes("يوسف")[0] == "j"

    def test_harakat_respected(self, ara):
        # With explicit fatha/kasra the written vowels are used.
        phonemes = ara.to_phonemes("مُحَمَّد")
        assert "u" in phonemes
        assert "a" in phonemes

    def test_teh_marbuta_final_a(self, ara):
        assert ara.to_phonemes("فاطمة")[-1] == "a"

    def test_emphatics_fold_to_plain(self, ara):
        assert ara.to_phonemes("طه")[0] == "t̪"
        assert ara.to_phonemes("صالح")[0] == "s"

    def test_qaf_stays_uvular(self, ara):
        assert ara.to_phonemes("قاسم")[0] == "q"

    def test_unknown_character_raises(self, ara):
        with pytest.raises(TTPError):
            ara.to_phonemes("نهQرو")

    def test_detection(self):
        from repro.ttp.registry import detect_language

        assert detect_language("نهرو") == "arabic"


class TestArabicMatching:
    """The paper's opening scenario: Arabic names match Latin renderings."""

    @pytest.mark.parametrize(
        "latin,arabic",
        [
            ("Nehru", "نهرو"),
            ("Muhammad", "محمد"),
            ("Karim", "كريم"),
            ("Salim", "سليم"),
        ],
    )
    def test_names_match_at_default_threshold(self, matcher, latin, arabic):
        assert matcher.matches(latin, arabic)

    def test_al_qaeda_example(self):
        """Paper §1: matching 'Al-Qaeda' across scripts "could be
        immensely useful for news organizations or security agencies"."""
        loose = LexEqualMatcher(MatchConfig(threshold=0.45))
        assert loose.matches("Al-Qaeda", "القاعدة")

    def test_non_matches_stay_non_matches(self, matcher):
        assert not matcher.matches("Smith", "محمد")
        assert not matcher.matches("Krishna", "نهرو")
