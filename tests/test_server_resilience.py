"""Resilience tests: retries, circuit breakers, degradation, deadlines.

Covers the client-side policies (``repro.server.resilience``), the
transport-error taxonomy, the server's graceful degradation of
multiscript matches under per-language TTP failures, cooperative
deadline cancellation, the ``faults`` op gating, the drain ordering
(listener closes before the drain wait), and statement-cache eviction
races.
"""

import random
import threading
import time

import pytest

from repro import faults, obs
from repro.core.integration import demo_books_db
from repro.errors import (
    CircuitOpenError,
    RequestFailedError,
    ServerConnectionError,
    TransportError,
)
from repro.server import (
    BackgroundServer,
    BreakerPolicy,
    CircuitBreaker,
    LexEqualClient,
    QueryService,
    RetryPolicy,
)
from repro.server.client import RETRYABLE_OPS
from repro.server.resilience import BreakerBoard

LEXEQUAL_SQL = (
    "SELECT author FROM books "
    "WHERE author LEXEQUAL 'Nehru' THRESHOLD 0.25"
)
EXPECTED_AUTHORS = {"Nehru", "नेहरु", "நேரு"}


@pytest.fixture(autouse=True)
def _clean_state():
    faults.reset()
    yield
    faults.reset()
    obs.disable()


def authors_of(result: dict) -> set:
    return {row[0]["text"] for row in result["rows"]}


class TestRetryPolicy:
    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(
            max_attempts=5, base_delay=0.1, multiplier=2.0, max_delay=0.3
        )
        rng = random.Random(7)
        for retry, cap in ((1, 0.1), (2, 0.2), (3, 0.3), (4, 0.3)):
            delays = [policy.backoff(retry, rng) for _ in range(200)]
            assert all(0.0 <= d <= cap for d in delays)
            # Full jitter: the delays actually spread over [0, cap].
            assert max(delays) > 0.5 * cap

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-0.1)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)


class TestCircuitBreaker:
    def make(self, threshold=3, reset=10.0):
        clock = [0.0]
        breaker = CircuitBreaker(
            "query",
            BreakerPolicy(failure_threshold=threshold, reset_timeout=reset),
            clock=lambda: clock[0],
        )
        return breaker, clock

    def test_opens_after_consecutive_failures(self):
        breaker, _ = self.make(threshold=3)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"
        with pytest.raises(CircuitOpenError) as err:
            breaker.allow()
        assert err.value.op == "query"
        assert err.value.retry_after > 0

    def test_success_resets_failure_count(self):
        breaker, _ = self.make(threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_probe_closes_on_success(self):
        breaker, clock = self.make(threshold=1, reset=5.0)
        breaker.record_failure()
        assert breaker.state == "open"
        clock[0] = 6.0
        breaker.allow()  # probe admitted
        assert breaker.state == "half_open"
        breaker.record_success()
        assert breaker.state == "closed"
        transitions = breaker.info()["transitions"]
        assert transitions["closed->open"] == 1
        assert transitions["open->half_open"] == 1
        assert transitions["half_open->closed"] == 1

    def test_half_open_probe_reopens_on_failure(self):
        breaker, clock = self.make(threshold=1, reset=5.0)
        breaker.record_failure()
        clock[0] = 6.0
        breaker.allow()
        assert breaker.state == "half_open"
        breaker.record_failure()
        assert breaker.state == "open"
        # The reset timer re-armed from the probe failure.
        clock[0] = 8.0
        with pytest.raises(CircuitOpenError):
            breaker.allow()
        clock[0] = 12.0
        breaker.allow()
        assert breaker.state == "half_open"

    def test_board_keeps_one_breaker_per_op(self):
        board = BreakerBoard(BreakerPolicy(failure_threshold=1))
        assert board.breaker("query") is board.breaker("query")
        assert board.breaker("query") is not board.breaker("ping")
        board.breaker("query").record_failure()
        assert board.info()["query"]["state"] == "open"
        assert board.info()["ping"]["state"] == "closed"


class TestTransportErrors:
    def test_refused_connection_is_transport_error(self):
        with pytest.raises(TransportError) as err:
            LexEqualClient("127.0.0.1", 1, timeout=2.0)
        assert isinstance(err.value, ServerConnectionError)
        assert err.value.op == "connect"

    def test_dropped_response_carries_op_and_request_id(self):
        faults.configure("server.conn.drop_write")
        with BackgroundServer(fault_injection=True) as bg:
            with LexEqualClient(bg.host, bg.port, timeout=5.0) as client:
                with pytest.raises(TransportError) as err:
                    client.ping()
        assert err.value.op == "ping"
        assert err.value.request_id == 1
        assert "op 'ping'" in str(err.value)
        assert "request id 1" in str(err.value)


class TestClientRetries:
    def retrying(self, bg, **kwargs):
        kwargs.setdefault(
            "retry", RetryPolicy(max_attempts=4, base_delay=0.01)
        )
        kwargs.setdefault("timeout", 10.0)
        return LexEqualClient(bg.host, bg.port, **kwargs)

    def test_query_survives_one_dropped_response(self):
        faults.configure("server.conn.drop_write", count=1)
        with BackgroundServer(fault_injection=True) as bg:
            with self.retrying(bg) as client:
                result = client.query(LEXEQUAL_SQL)
        assert authors_of(result) == EXPECTED_AUTHORS
        assert faults.describe()["server.conn.drop_write"]["fires"] == 1

    def test_query_survives_one_dropped_request(self):
        faults.configure("server.conn.drop_read", count=1)
        with BackgroundServer(fault_injection=True) as bg:
            with self.retrying(bg) as client:
                assert client.ping() == "pong"

    def test_no_policy_means_no_retry(self):
        faults.configure("server.conn.drop_write", count=1)
        with BackgroundServer(fault_injection=True) as bg:
            with LexEqualClient(bg.host, bg.port, timeout=5.0) as client:
                with pytest.raises(TransportError):
                    client.ping()

    def test_prepare_and_execute_are_not_transport_retried(self):
        assert "prepare" not in RETRYABLE_OPS
        assert "execute" not in RETRYABLE_OPS
        faults.configure("server.conn.drop_write", count=2)
        with BackgroundServer(fault_injection=True) as bg:
            with self.retrying(bg) as client:
                with pytest.raises(TransportError) as err:
                    client.prepare("SELECT title FROM books", name="all")
                assert err.value.op == "prepare"
                with pytest.raises(TransportError) as err:
                    client.execute("all")
                assert err.value.op == "execute"

    def test_overloaded_reject_is_retried_for_any_op(self):
        # An injected admission reject: the request never ran, so even
        # a non-idempotent execute may be resubmitted.
        with BackgroundServer(fault_injection=True) as bg:
            with self.retrying(bg) as client:
                name = client.prepare("SELECT title FROM books", name="all")
                faults.configure("pool.admit", count=1)
                result = client.execute(name)
        assert result["row_count"] == 6

    def test_retries_exhaust_into_transport_error(self):
        faults.configure("server.conn.drop_write")  # every response lost
        with BackgroundServer(fault_injection=True) as bg:
            with self.retrying(bg) as client:
                with pytest.raises(TransportError):
                    client.ping()

    def test_breaker_trips_after_repeated_transport_failures(self):
        faults.configure("server.conn.drop_write")
        with BackgroundServer(fault_injection=True) as bg:
            client = LexEqualClient(
                bg.host,
                bg.port,
                timeout=5.0,
                breaker=BreakerPolicy(
                    failure_threshold=2, reset_timeout=60.0
                ),
            )
            try:
                for _ in range(2):
                    with pytest.raises(TransportError):
                        client.ping()
                with pytest.raises(CircuitOpenError):
                    client.ping()
                info = client.resilience_info()["ping"]
                assert info["state"] == "open"
                assert info["transitions"]["closed->open"] == 1
            finally:
                client.close()


class TestDegradedResponses:
    def test_query_degrades_when_one_language_fails(self):
        with BackgroundServer(fault_injection=True) as bg:
            # Configure after startup: the demo database (and its
            # phonetic index) must build cleanly first.
            faults.configure(
                "ttp.transform", error="ttp", languages=("hindi",)
            )
            with LexEqualClient(bg.host, bg.port, timeout=30.0) as client:
                result = client.query(LEXEQUAL_SQL)
        assert result["degraded"] is True
        assert result["failed_languages"] == ["hindi"]
        assert authors_of(result) == EXPECTED_AUTHORS - {"नेहरु"}

    def test_healthy_query_has_no_degraded_marker(self):
        with BackgroundServer() as bg:
            with LexEqualClient(bg.host, bg.port, timeout=30.0) as client:
                result = client.query(LEXEQUAL_SQL)
        assert "degraded" not in result
        assert authors_of(result) == EXPECTED_AUTHORS

    def test_query_operand_language_failure_degrades_not_errors(self):
        # The *query* constant is english: its transform failing must
        # degrade the match (falling back to per-row evaluation, which
        # then degrades every row), never error the request.
        with BackgroundServer(fault_injection=True) as bg:
            faults.configure(
                "ttp.transform", error="ttp", languages=("english",)
            )
            with LexEqualClient(bg.host, bg.port, timeout=30.0) as client:
                result = client.query(LEXEQUAL_SQL)
        assert result["degraded"] is True
        assert "english" in result["failed_languages"]
        assert authors_of(result) <= EXPECTED_AUTHORS

    def test_lexequal_degrades_to_noresource(self):
        with BackgroundServer(fault_injection=True) as bg:
            faults.configure(
                "ttp.transform", error="ttp", languages=("hindi",)
            )
            with LexEqualClient(bg.host, bg.port, timeout=30.0) as client:
                result = client.lexequal("Nehru", "नेहरु")
                healthy = client.lexequal("Nehru", "Nero")
        assert result["outcome"] == "noresource"
        assert result["match"] is None
        assert result["degraded"] is True
        assert result["failed_languages"] == ["hindi"]
        # Other language pairs are untouched by the hindi outage.
        assert healthy["outcome"] in ("true", "false")
        assert "degraded" not in healthy

    def test_degraded_responses_are_counted(self):
        with BackgroundServer(fault_injection=True) as bg:
            faults.configure(
                "ttp.transform", error="ttp", languages=("hindi",)
            )
            with LexEqualClient(bg.host, bg.port, timeout=30.0) as client:
                client.query(LEXEQUAL_SQL)
                counters = client.stats()["metrics"]["counters"]
        assert counters["server.degraded_responses"] >= 1


class TestDeadlineCancellation:
    def test_deadline_cancels_doomed_work_and_frees_the_slot(self):
        # The injected latency makes the request blow its deadline while
        # on the worker; the DP loop then cancels cooperatively instead
        # of matching to completion.
        faults.configure("pool.execute", latency=0.3, count=1)
        with BackgroundServer(fault_injection=True) as bg:
            with LexEqualClient(bg.host, bg.port, timeout=30.0) as client:
                with pytest.raises(RequestFailedError) as err:
                    client.query(LEXEQUAL_SQL, timeout=0.05)
                assert err.value.code == "timeout"
                deadline = time.monotonic() + 5.0
                counters = {}
                while time.monotonic() < deadline:
                    counters = client.stats()["metrics"]["counters"]
                    if counters.get("server.deadline.cancels", 0) >= 1:
                        break
                    time.sleep(0.05)
        assert counters.get("server.deadline.cancels", 0) >= 1
        assert counters.get("matching.dp.deadline_cancels", 0) >= 1

    def test_fast_requests_are_unaffected_by_deadlines(self):
        with BackgroundServer() as bg:
            with LexEqualClient(bg.host, bg.port, timeout=30.0) as client:
                result = client.query(LEXEQUAL_SQL, timeout=10.0)
        assert authors_of(result) == EXPECTED_AUTHORS


class TestFaultsOpGating:
    def test_faults_op_disabled_by_default(self):
        with BackgroundServer() as bg:
            with LexEqualClient(bg.host, bg.port, timeout=5.0) as client:
                with pytest.raises(RequestFailedError) as err:
                    client.faults("list")
        assert err.value.code == "invalid_request"

    def test_faults_op_round_trip(self):
        with BackgroundServer(fault_injection=True) as bg:
            with LexEqualClient(bg.host, bg.port, timeout=5.0) as client:
                client.faults("seed", seed=2004)
                listed = client.faults(
                    "configure",
                    name="ttp.transform",
                    probability=0.5,
                    error="ttp",
                    languages=["hindi"],
                )
                info = listed["failpoints"]["ttp.transform"]
                assert info["probability"] == 0.5
                assert info["error"] == "ttp"
                assert info["languages"] == ["hindi"]
                listed = client.faults("disable", name="ttp.transform")
                assert listed["failpoints"] == {}
                client.faults("configure", name="pool.admit", count=1)
                listed = client.faults("reset")
                assert listed["failpoints"] == {}

    def test_faults_op_validates_configure(self):
        with BackgroundServer(fault_injection=True) as bg:
            with LexEqualClient(bg.host, bg.port, timeout=5.0) as client:
                with pytest.raises(RequestFailedError) as err:
                    client.faults("configure", name="x", error="bogus")
                assert err.value.code == "invalid_request"
                with pytest.raises(RequestFailedError):
                    client.faults("configure")  # missing name
                with pytest.raises(RequestFailedError):
                    client.faults("explode")


class TestDrainOrdering:
    def test_listener_closes_before_drain_waits_on_inflight(self):
        """Regression: during the drain wait, new connects are refused.

        The shutdown path must close the listening socket *before*
        waiting on in-flight work; otherwise a connection arriving
        mid-drain would be accepted and then never answered.
        """
        faults.configure("pool.execute", latency=0.8, count=1)
        bg = BackgroundServer(fault_injection=True, drain_timeout=15.0)
        bg.start()
        results: list = []
        errors: list = []

        def inflight():
            try:
                with LexEqualClient(bg.host, bg.port, timeout=30.0) as c:
                    results.append(c.query(LEXEQUAL_SQL))
            except Exception as exc:  # surfaced via `errors`
                errors.append(repr(exc))

        t = threading.Thread(target=inflight)
        t.start()
        time.sleep(0.25)  # the slow request is on a worker now
        stopper = threading.Thread(target=bg.stop)
        stopper.start()
        time.sleep(0.25)  # drain has begun; ~0.5s of work remains
        try:
            with pytest.raises(TransportError):
                LexEqualClient(bg.host, bg.port, timeout=2.0)
        finally:
            stopper.join(timeout=30.0)
            t.join(timeout=30.0)
        # The in-flight request still completed and got its response.
        assert not errors, errors
        assert results and authors_of(results[0]) == EXPECTED_AUTHORS


class TestStatementCacheEvictionRaces:
    #: Distinct SQL texts (distinct cache entries) with known answers.
    CASES = [
        ("SELECT title FROM books WHERE price < 10.0", 1),
        ("SELECT title FROM books WHERE price < 20.0", 2),
        ("SELECT title FROM books WHERE price < 50.0", 3),
        ("SELECT title FROM books WHERE price < 100.0", 4),
        ("SELECT title FROM books WHERE price < 200.0", 5),
        ("SELECT title FROM books WHERE price < 300.0", 6),
    ]

    def test_concurrent_eviction_never_serves_wrong_results(self):
        """8 clients churn a 2-entry statement cache; answers stay right."""
        service = QueryService(
            demo_books_db("none"), statement_cache_size=2
        )
        failures: list = []

        def worker(i, host, port):
            try:
                with LexEqualClient(host, port, timeout=60.0) as client:
                    for round_no in range(3):
                        for j, (sql, expected) in enumerate(self.CASES):
                            name = client.prepare(
                                sql, name=f"stmt_{i}_{round_no}_{j}"
                            )
                            count = client.execute(name)["row_count"]
                            if count != expected:
                                failures.append((sql, count, expected))
                            count = client.query(sql)["row_count"]
                            if count != expected:
                                failures.append((sql, count, expected))
            except Exception as exc:  # surfaced via `failures`
                failures.append(("exception", repr(exc)))

        with BackgroundServer(service, max_workers=4) as bg:
            threads = [
                threading.Thread(target=worker, args=(i, bg.host, bg.port))
                for i in range(8)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120.0)
            assert not failures, failures[:5]
            with LexEqualClient(bg.host, bg.port) as client:
                info = client.stats()["statement_cache"]
        assert info["size"] <= 2
        assert info["evictions"] > 0


class TestHalfOpenConcurrency:
    """The cluster router shares one breaker per shard across fan-outs:
    half-open must admit exactly one probe no matter how many threads
    race `allow()`, and a failed probe must release the permit."""

    def make(self, threshold=1, reset=5.0):
        clock = [0.0]
        breaker = CircuitBreaker(
            "shard-0",
            BreakerPolicy(failure_threshold=threshold, reset_timeout=reset),
            clock=lambda: clock[0],
        )
        return breaker, clock

    def test_two_threads_racing_allow_admit_exactly_one_probe(self):
        breaker, clock = self.make()
        breaker.record_failure()
        assert breaker.state == "open"
        clock[0] = 6.0  # reset timeout elapsed: next allow() half-opens

        outcomes: list[str] = []
        barrier = threading.Barrier(2)

        def attempt():
            barrier.wait()
            try:
                breaker.allow()
                outcomes.append("admitted")
            except CircuitOpenError:
                outcomes.append("rejected")

        threads = [threading.Thread(target=attempt) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10.0)
        assert sorted(outcomes) == ["admitted", "rejected"]
        assert breaker.state == "half_open"
        assert breaker.info()["probe_in_flight"] is True

    def test_many_threads_still_one_probe(self):
        breaker, clock = self.make()
        breaker.record_failure()
        clock[0] = 6.0
        outcomes: list[str] = []
        barrier = threading.Barrier(8)

        def attempt():
            barrier.wait()
            try:
                breaker.allow()
                outcomes.append("admitted")
            except CircuitOpenError:
                outcomes.append("rejected")

        threads = [threading.Thread(target=attempt) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10.0)
        assert outcomes.count("admitted") == 1
        assert outcomes.count("rejected") == 7

    def test_probe_failure_reopens_without_losing_the_permit(self):
        breaker, clock = self.make()
        breaker.record_failure()
        clock[0] = 6.0
        breaker.allow()  # the probe
        # Everyone else fast-fails while the probe is in flight.
        with pytest.raises(CircuitOpenError):
            breaker.allow()
        breaker.record_failure()  # probe fails
        assert breaker.state == "open"
        assert breaker.info()["probe_in_flight"] is False
        # Timer re-armed: still fast-failing before the next window...
        clock[0] = 8.0
        with pytest.raises(CircuitOpenError):
            breaker.allow()
        # ...and the permit was released: the next window admits a new
        # probe, whose success closes the circuit.
        clock[0] = 12.0
        breaker.allow()
        assert breaker.state == "half_open"
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.info()["probe_in_flight"] is False


class TestRouterDrain:
    def test_inflight_fanout_completes_while_new_connects_refused(self):
        """Router-aware SIGTERM drain (DESIGN.md §11.4).

        With a fan-out still in flight: the router's listener must be
        closed (new connections refused at the OS level), the in-flight
        fan-out must still complete with the full merged result, and
        the shards must be SIGTERMed only after it did.
        """
        from repro.cluster import BackgroundCluster

        faults.configure("cluster.shard.slow", latency=0.6, count=2)
        bg = BackgroundCluster(
            2, supervisor_options={"health_interval": 0.2}
        )
        bg.start()
        results: list = []
        errors: list = []

        def inflight():
            try:
                with LexEqualClient(bg.host, bg.port, timeout=30.0) as c:
                    results.append(c.query(LEXEQUAL_SQL))
            except Exception as exc:  # surfaced via `errors`
                errors.append(repr(exc))

        t = threading.Thread(target=inflight)
        t.start()
        time.sleep(0.25)  # the fan-out is inside the slow-shard sleep
        stopper = threading.Thread(target=bg.stop)
        stopper.start()
        time.sleep(0.2)  # drain has begun; fan-out still has ~0.3s
        try:
            with pytest.raises(TransportError):
                LexEqualClient(bg.host, bg.port, timeout=2.0)
        finally:
            stopper.join(timeout=60.0)
            t.join(timeout=60.0)
        assert not errors, errors
        assert results and authors_of(results[0]) == EXPECTED_AUTHORS
        # Forwarded drain: no shard process survived the router exit.
        assert bg.supervisor.live_pids() == []
