"""Tests for the edit-distance cost models."""

import pytest

from repro.errors import MatchConfigError
from repro.matching.costs import (
    ClusteredCost,
    LevenshteinCost,
    UNIT_COST,
    WEAK_PHONEMES,
)
from repro.phonetics.clusters import singleton_clustering


class TestLevenshtein:
    def test_unit_costs(self):
        assert UNIT_COST.insert("a") == 1.0
        assert UNIT_COST.delete("p") == 1.0
        assert UNIT_COST.substitute("a", "b") == 1.0

    def test_identity_substitution_free(self):
        assert UNIT_COST.substitute("a", "a") == 0.0

    def test_bounds(self):
        assert UNIT_COST.min_op_cost() == 1.0
        assert UNIT_COST.min_indel_cost() == 1.0
        assert UNIT_COST.min_mapped_op_cost() == 1.0

    def test_equality(self):
        assert LevenshteinCost() == LevenshteinCost()
        assert hash(LevenshteinCost()) == hash(LevenshteinCost())


class TestClusteredCost:
    def test_intra_cluster_discount(self):
        costs = ClusteredCost(0.25)
        assert costs.substitute("p", "b") == 0.25
        assert costs.substitute("t", "ʈ") == 0.25

    def test_cross_cluster_full_cost(self):
        costs = ClusteredCost(0.25, vowel_cross_cost=1.0)
        assert costs.substitute("p", "m") == 1.0
        assert costs.substitute("p", "a") == 1.0

    def test_vowel_cross_discount(self):
        costs = ClusteredCost(0.25, vowel_cross_cost=0.5)
        assert costs.substitute("i", "u") == 0.5  # different vowel clusters
        assert costs.substitute("i", "e") == 0.5
        assert costs.substitute("e", "ɛ") == 0.25  # same cluster wins

    def test_identity_free(self):
        assert ClusteredCost(0.25).substitute("p", "p") == 0.0

    def test_weak_indel_discount(self):
        costs = ClusteredCost(0.25, weak_indel_cost=0.5)
        assert costs.insert("h") == 0.5
        assert costs.delete("ə") == 0.5
        assert costs.insert("p") == 1.0
        assert costs.delete("m") == 1.0

    def test_weak_set_contents(self):
        assert "h" in WEAK_PHONEMES
        assert "ə" in WEAK_PHONEMES
        assert "p" not in WEAK_PHONEMES

    def test_flat_costs_option(self):
        costs = ClusteredCost(
            0.5, weak_indel_cost=1.0, vowel_cross_cost=1.0
        )
        assert costs.insert("h") == 1.0
        assert costs.substitute("i", "u") == 1.0

    def test_cost_one_simulates_levenshtein_on_subs(self):
        costs = ClusteredCost(
            1.0, weak_indel_cost=1.0, vowel_cross_cost=1.0
        )
        assert costs.substitute("p", "b") == 1.0

    def test_zero_cost_soundex_mode(self):
        costs = ClusteredCost(0.0)
        assert costs.substitute("p", "b") == 0.0
        assert costs.min_op_cost() > 0.0

    def test_singleton_clustering_disables_discount(self):
        costs = ClusteredCost(0.0, singleton_clustering())
        assert costs.substitute("p", "b") == 1.0

    def test_min_bounds(self):
        costs = ClusteredCost(0.25, weak_indel_cost=0.5, vowel_cross_cost=0.5)
        assert costs.min_op_cost() == 0.25
        assert costs.min_indel_cost() == 0.5
        assert costs.min_mapped_op_cost() == 0.5

    @pytest.mark.parametrize("bad", [-0.1, 1.1])
    def test_invalid_intra_cost(self, bad):
        with pytest.raises(MatchConfigError):
            ClusteredCost(bad)

    @pytest.mark.parametrize("bad", [0.0, -1.0, 1.5])
    def test_invalid_weak_cost(self, bad):
        with pytest.raises(MatchConfigError):
            ClusteredCost(0.5, weak_indel_cost=bad)

    def test_equality_includes_all_knobs(self):
        a = ClusteredCost(0.25, weak_indel_cost=0.5, vowel_cross_cost=0.5)
        b = ClusteredCost(0.25, weak_indel_cost=0.5, vowel_cross_cost=0.5)
        c = ClusteredCost(0.25, weak_indel_cost=0.5, vowel_cross_cost=0.75)
        assert a == b and hash(a) == hash(b)
        assert a != c
