"""Tests for the inside-the-engine LexEQUAL acceleration."""

import pytest

from repro import Database, LangText, install_lexequal
from repro.core import create_phonetic_accelerator
from repro.errors import DatabaseError
from repro.minidb.executor import RowidScan, SeqScan
from repro.minidb.planner import plan_select
from repro.minidb.sql import parse

NAMES = [
    ("Nehru", "Discovery of India"),
    ("नेहरु", "भारत एक खोज"),
    ("நேரு", "ஆசிய ஜோதி"),
    ("Nero", "The Coronation"),
    ("Gandhi", "Autobiography"),
    ("गांधी", "आत्मकथा"),
    ("Krishna", "Gita"),
    ("Smith", "Wealth of Nations"),
]

LEXEQUAL_SQL = (
    "SELECT author FROM books WHERE author LEXEQUAL :q THRESHOLD :e"
)


def make_db() -> Database:
    db = Database()
    install_lexequal(db)
    db.execute("CREATE TABLE books (author TEXT, title TEXT)")
    for author, title in NAMES:
        db.insert("books", (author, title))
    return db


def plan_uses(db, sql: str, op_type) -> bool:
    plan = plan_select(db, parse(sql), {"q": "Nehru", "e": 0.25})
    stack = [plan]
    while stack:
        node = stack.pop()
        if isinstance(node, op_type):
            return True
        for attr in ("child", "outer", "inner", "left", "right"):
            nxt = getattr(node, attr, None)
            if nxt is not None:
                stack.append(nxt)
    return False


class TestQGramAccelerator:
    def test_results_identical_to_full_scan(self):
        plain = make_db()
        accelerated = make_db()
        create_phonetic_accelerator(accelerated, "books", "author")
        for query in ["Nehru", "Gandhi", "Krishna", "Zzyzx"]:
            for threshold in [0.1, 0.25, 0.4]:
                expected = plain.execute(
                    LEXEQUAL_SQL, q=query, e=threshold
                ).rows
                got = accelerated.execute(
                    LEXEQUAL_SQL, q=query, e=threshold
                ).rows
                assert sorted(got) == sorted(expected), (query, threshold)

    def test_plan_uses_rowid_scan(self):
        db = make_db()
        create_phonetic_accelerator(db, "books", "author")
        assert plan_uses(db, LEXEQUAL_SQL, RowidScan)

    def test_without_accelerator_plan_is_seq_scan(self):
        db = make_db()
        assert not plan_uses(db, LEXEQUAL_SQL, RowidScan)
        assert plan_uses(db, LEXEQUAL_SQL, SeqScan)

    def test_insert_maintains_structures(self):
        db = make_db()
        create_phonetic_accelerator(db, "books", "author")
        db.execute("INSERT INTO books VALUES ('Nehroo', 'Variant')")
        result = db.execute(LEXEQUAL_SQL, q="Nehru", e=0.25)
        assert ("Nehroo",) in result.rows

    def test_delete_maintains_structures(self):
        db = make_db()
        create_phonetic_accelerator(db, "books", "author")
        # rowid 0 is 'Nehru'
        db.delete_row("books", 0)
        result = db.execute(LEXEQUAL_SQL, q="Nehru", e=0.25)
        assert ("Nehru",) not in result.rows
        assert ("नेहरु",) in result.rows

    def test_unsupported_language_rows_never_match(self):
        db = make_db()
        db.insert("books", ("נהרו", "Hebrew script"))
        create_phonetic_accelerator(db, "books", "author")
        result = db.execute(LEXEQUAL_SQL, q="Nehru", e=0.25)
        assert ("נהרו",) not in result.rows

    def test_arabic_rows_now_match(self):
        """The paper's Figure 1 has an Arabic row; the abjad converter
        lets it participate."""
        db = make_db()
        db.insert("books", ("نهرو", "Arabic script"))
        create_phonetic_accelerator(db, "books", "author")
        result = db.execute(LEXEQUAL_SQL, q="Nehru", e=0.25)
        assert ("نهرو",) in result.rows

    def test_null_column_values_handled(self):
        db = make_db()
        db.insert("books", (None, "Anonymous"))
        acc = create_phonetic_accelerator(db, "books", "author")
        result = db.execute(LEXEQUAL_SQL, q="Nehru", e=0.25)
        assert (None,) not in result.rows

    def test_other_conjuncts_still_applied(self):
        db = make_db()
        create_phonetic_accelerator(db, "books", "author")
        result = db.execute(
            "SELECT author FROM books WHERE author LEXEQUAL 'Nehru' "
            "THRESHOLD 0.25 AND title = 'Discovery of India'"
        )
        assert result.rows == [("Nehru",)]

    def test_inlanguages_restriction_applies(self):
        db = make_db()
        create_phonetic_accelerator(db, "books", "author")
        result = db.execute(
            "SELECT author FROM books WHERE author LEXEQUAL 'Nehru' "
            "THRESHOLD 0.25 INLANGUAGES { english, hindi }"
        )
        assert sorted(result.rows) == [("Nehru",), ("नेहरु",)]

    def test_langtext_column(self):
        db = Database()
        install_lexequal(db)
        from repro.minidb.schema import Column
        from repro.minidb.values import SqlType

        db.create_table("t", [Column("name", SqlType.LANGTEXT)])
        db.insert("t", (LangText("नेहरु", "hindi"),))
        db.insert("t", (LangText("Nero", "english"),))
        create_phonetic_accelerator(db, "t", "name")
        result = db.execute(
            "SELECT name FROM t WHERE name LEXEQUAL 'Nehru' THRESHOLD 0.25"
        )
        assert result.rows == [(LangText("नेहरु", "hindi"),)]


class TestIndexAccelerator:
    def test_subset_of_full_scan(self):
        plain = make_db()
        accelerated = make_db()
        create_phonetic_accelerator(
            accelerated, "books", "author", method="index"
        )
        for query in ["Nehru", "Gandhi", "Krishna"]:
            expected = set(
                plain.execute(LEXEQUAL_SQL, q=query, e=0.25).rows
            )
            got = set(
                accelerated.execute(LEXEQUAL_SQL, q=query, e=0.25).rows
            )
            assert got <= expected

    def test_same_key_bucket_found(self):
        db = make_db()
        create_phonetic_accelerator(db, "books", "author", method="index")
        result = db.execute(LEXEQUAL_SQL, q="Nehru", e=0.25)
        assert ("Nehru",) in result.rows
        assert ("नेहरु",) in result.rows

    def test_delete_maintains_key_tree(self):
        db = make_db()
        create_phonetic_accelerator(db, "books", "author", method="index")
        db.delete_row("books", 1)  # नेहरु
        result = db.execute(LEXEQUAL_SQL, q="Nehru", e=0.25)
        assert ("नेहरु",) not in result.rows


class TestParallelAccelerator:
    def test_results_identical_to_full_scan(self):
        plain = make_db()
        accelerated = make_db()
        acc = create_phonetic_accelerator(
            accelerated, "books", "author", method="parallel", workers=2
        )
        try:
            for query in ["Nehru", "Gandhi", "Krishna", "Zzyzx"]:
                for threshold in [0.1, 0.25, 0.4]:
                    expected = plain.execute(
                        LEXEQUAL_SQL, q=query, e=threshold
                    ).rows
                    got = accelerated.execute(
                        LEXEQUAL_SQL, q=query, e=threshold
                    ).rows
                    assert got == expected, (query, threshold)
        finally:
            acc.drop()

    def test_plan_uses_rowid_scan(self):
        db = make_db()
        acc = create_phonetic_accelerator(
            db, "books", "author", method="parallel", workers=1
        )
        try:
            assert plan_uses(db, LEXEQUAL_SQL, RowidScan)
        finally:
            acc.drop()

    def test_insert_and_delete_maintain_executor(self):
        db = make_db()
        acc = create_phonetic_accelerator(
            db, "books", "author", method="parallel", workers=1
        )
        try:
            db.insert("books", ("Neru", "New Book"))
            result = db.execute(LEXEQUAL_SQL, q="Nehru", e=0.25)
            assert ("Neru",) in result.rows
            db.delete_row("books", 1)  # नेहरु
            result = db.execute(LEXEQUAL_SQL, q="Nehru", e=0.25)
            assert ("नेहरु",) not in result.rows
        finally:
            acc.drop()

    def test_inlanguages_restriction_applies(self):
        db = make_db()
        acc = create_phonetic_accelerator(
            db, "books", "author", method="parallel", workers=1
        )
        try:
            result = db.execute(
                LEXEQUAL_SQL + " INLANGUAGES { english }",
                q="Nehru",
                e=0.25,
            )
            assert ("Nehru",) in result.rows
            assert ("नेहरु",) not in result.rows
        finally:
            acc.drop()


class TestLifecycle:
    def test_invalid_method_rejected(self):
        db = make_db()
        with pytest.raises(DatabaseError):
            create_phonetic_accelerator(db, "books", "author", method="x")

    def test_drop_restores_full_scan(self):
        db = make_db()
        acc = create_phonetic_accelerator(db, "books", "author")
        assert plan_uses(db, LEXEQUAL_SQL, RowidScan)
        acc.drop()
        assert not plan_uses(db, LEXEQUAL_SQL, RowidScan)
        # Results unchanged after dropping.
        result = db.execute(LEXEQUAL_SQL, q="Nehru", e=0.25)
        assert ("Nehru",) in result.rows

    def test_installs_udfs_if_missing(self):
        db = Database()
        db.execute("CREATE TABLE t (name TEXT)")
        db.insert("t", ("Nehru",))
        create_phonetic_accelerator(db, "t", "name")
        assert db.has_udf("lexequal")

    def test_accelerator_on_missing_table_rejected(self):
        db = Database()
        from repro.errors import SchemaError

        with pytest.raises(SchemaError):
            create_phonetic_accelerator(db, "ghost", "name")
