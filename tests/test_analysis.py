"""Tests for the domain-aware static-analysis pass (repro.analysis).

Two layers:

* seeded-violation fixtures — for every analyzer, a tiny fixture module
  (or registry) carrying exactly the class of bug the rule exists to
  catch, asserting the expected rule id fires;
* the repo itself — the full pass must run clean against this checkout
  with the shipped (empty) baseline, which is what CI enforces.
"""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.analysis import (
    AnalysisContext,
    Finding,
    LintUsageError,
    Rule,
    apply_baseline,
    default_rules,
    lint,
    load_baseline,
    render_json,
    render_text,
    run_rules,
    save_baseline,
    select_rules,
)
from repro.analysis.astrules import (
    FailpointDrift,
    LockDiscipline,
    LockSpec,
    ManagedParallelism,
    MetricNames,
    OpDrift,
)
from repro.analysis.datarules import (
    ClusterPartition,
    IpaLiterals,
    MetricAxioms,
    ScriptCoverage,
    ScriptSpec,
    TableSpec,
    TtpShadowing,
)
from repro.errors import MatchConfigError
from repro.matching.bktree import BKTree
from repro.matching.costs import ClusteredCost, LevenshteinCost
from repro.matching.metric import check_metric_axioms, validate_metric
from repro.phonetics.parse import all_symbols


def write_module(root, name: str, source: str) -> str:
    path = root / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return name


def rule_ids(findings) -> set[str]:
    return {f.rule for f in findings}


# --------------------------------------------------------------- framework


class TestFramework:
    def test_finding_rejects_unknown_severity(self):
        with pytest.raises(ValueError, match="unknown severity"):
            Finding("LEX-X999", "a.py", 1, "boom", severity="fatal")

    def test_baseline_round_trip_ignores_lines(self, tmp_path):
        finding = Finding("LEX-D001", "src/x.py", 10, "bad IPA 'zz'")
        moved = Finding("LEX-D001", "src/x.py", 99, "bad IPA 'zz'")
        other = Finding("LEX-D001", "src/x.py", 10, "bad IPA 'qq'")
        path = tmp_path / "baseline.json"
        save_baseline(path, [finding])
        baseline = load_baseline(path)
        active, suppressed = apply_baseline([moved, other], baseline)
        assert suppressed == [moved]  # same key despite the line shift
        assert active == [other]

    def test_missing_baseline_suppresses_nothing(self, tmp_path):
        assert load_baseline(tmp_path / "absent.json") == set()

    def test_select_rules_unknown_token_raises(self):
        with pytest.raises(LintUsageError, match="unknown rule 'nope'"):
            select_rules(default_rules(), select=("nope",))

    def test_select_and_ignore_by_id_and_name(self):
        rules = default_rules()
        picked = select_rules(rules, select=("LEX-D003", "op-drift"))
        assert {r.rule_id for r in picked} == {"LEX-D003", "LEX-A001"}
        rest = select_rules(rules, ignore=("metric-axioms",))
        assert "LEX-D003" not in {r.rule_id for r in rest}

    def test_run_rules_captures_analyzer_crash(self):
        class Exploding(Rule):
            rule_id = "LEX-T001"
            name = "exploding"
            description = "always crashes"

            def run(self, ctx):
                raise RuntimeError("kaboom")

        findings = run_rules(AnalysisContext(), [Exploding()])
        assert len(findings) == 1
        assert findings[0].rule == "LEX-T001"
        assert "kaboom" in findings[0].message

    def test_reporters(self):
        finding = Finding("LEX-D001", "src/x.py", 3, "bad")
        text = render_text([finding], suppressed=1, rules_run=9)
        assert "src/x.py:3: LEX-D001 [error] bad" in text
        assert "1 baselined" in text
        doc = json.loads(
            render_json([finding], root="/r", rules=[{"id": "LEX-D001"}])
        )
        assert doc["findings"][0]["line"] == 3
        assert doc["version"] == 1


# --------------------------------------------------- seeded data violations


class TestSeededDataViolations:
    def test_bad_ipa_literal_fires_d001(self, tmp_path):
        mod = write_module(
            tmp_path,
            "fixture_tables.py",
            '''
            _VOWELS = {
                "अ": "a",
                "आ": "zz9",
            }
            ''',
        )
        rule = IpaLiterals(tables=(TableSpec(mod, "_VOWELS"),))
        findings = list(rule.run(AnalysisContext(tmp_path)))
        assert rule_ids(findings) == {"LEX-D001"}
        assert len(findings) == 1
        assert "'zz9'" in findings[0].message
        assert findings[0].file == mod
        assert findings[0].line == 4  # the offending literal's line

    def test_broken_partition_fires_d002(self, tmp_path):
        mod = write_module(
            tmp_path,
            "fixture_clusters.py",
            '''
            _CLUSTERS = (
                ("p", "b"),
                ("b", "m"),
                (),
                ("p2",),
            )
            ''',
        )
        rule = ClusterPartition(mod, "_CLUSTERS", check_default=False)
        findings = list(rule.run(AnalysisContext(tmp_path)))
        assert rule_ids(findings) == {"LEX-D002"}
        messages = "\n".join(f.message for f in findings)
        assert "'b' appears in both cluster #0 and cluster #1" in messages
        assert "cluster #2 is empty" in messages
        assert "non-inventory symbol 'p2'" in messages

    def test_broken_triangle_fires_d003(self):
        # Same-cluster vowels cost the full intra cost (1.0) while a
        # detour through a cross-cluster vowel costs 0.1 + 0.1.
        broken = ClusteredCost(
            intra_cluster_cost=1.0, vowel_cross_cost=0.1
        )
        rule = MetricAxioms(models=[("broken", broken)])
        findings = list(rule.run(AnalysisContext()))
        assert rule_ids(findings) == {"LEX-D003"}
        assert any("triangle" in f.message for f in findings)

    def test_shadowed_rule_fires_d004(self, tmp_path):
        mod = write_module(
            tmp_path,
            "fixture_rules.py",
            '''
            _RULES = [
                ("", "a", "", "a"),
                ("", "ar", "", "ar"),
                ("", "b", "#", "b"),
                ("", "b", "#", "b"),
                ("", "c", "", "k"),
            ]
            ''',
        )
        rule = TtpShadowing(tables=((mod, "_RULES"),))
        findings = list(rule.run(AnalysisContext(tmp_path)))
        assert rule_ids(findings) == {"LEX-D004"}
        messages = "\n".join(f.message for f in findings)
        assert "unreachable" in messages  # 'ar' behind unconditional 'a'
        assert "duplicates the rule" in messages  # second 'b' row
        assert len(findings) == 2

    def test_coverage_gap_fires_d005(self, tmp_path):
        mod = write_module(tmp_path, "fixture_english.py", "X = 1\n")
        # The English converter has no rule for U+00DF (ß); declaring
        # it in the coverage range must surface the gap.
        spec = ScriptSpec("english", mod, ((0xDF, 0xDF, "{}"),))
        rule = ScriptCoverage(scripts=(spec,))
        findings = list(rule.run(AnalysisContext(tmp_path)))
        assert rule_ids(findings) == {"LEX-D005"}
        assert "U+00DF" in findings[0].message


# ---------------------------------------------------- seeded AST violations


class TestSeededAstViolations:
    def test_op_set_drift_fires_a001(self, tmp_path):
        write_module(
            tmp_path, "proto.py", 'OPS = ("ping", "query", "ghost")\n'
        )
        write_module(
            tmp_path,
            "app.py",
            '''
            class Server:
                async def _dispatch(self, session, request):
                    op = request["op"]
                    if op == "ping":
                        return "pong"
                    if op == "query":
                        return self.run(request)
                    if op == "undeclared":
                        return None
            ''',
        )
        write_module(
            tmp_path,
            "client.py",
            'RETRYABLE_OPS = frozenset({"ping", "flush"})\n',
        )
        (tmp_path / "DESIGN.md").write_text(
            "## 7. Protocol\n\n| `ping` | `query` |\n", encoding="utf-8"
        )
        rule = OpDrift(
            protocol_file="proto.py",
            server_file="app.py",
            client_file="client.py",
            design_file="DESIGN.md",
        )
        findings = list(rule.run(AnalysisContext(tmp_path)))
        assert rule_ids(findings) == {"LEX-A001"}
        messages = "\n".join(f.message for f in findings)
        # retryable op the server never dispatches
        assert "'flush'" in messages
        # dispatched op missing from OPS
        assert "'undeclared'" in messages
        # declared op never dispatched, and undocumented in §7
        assert "'ghost'" in messages
        assert "not documented" in messages

    def test_failpoint_drift_fires_a002(self, tmp_path):
        fp = write_module(
            tmp_path,
            "fp.py",
            'FAILPOINTS = frozenset({"known.point", "stale.point"})\n',
        )
        write_module(
            tmp_path,
            "pkg/mod.py",
            '''
            from repro import faults

            def work():
                faults.fire("known.point")
                faults.fire("unregistered.point")
            ''',
        )
        rule = FailpointDrift(faults_file=fp, subdir="pkg")
        findings = list(rule.run(AnalysisContext(tmp_path)))
        assert rule_ids(findings) == {"LEX-A002"}
        messages = "\n".join(f.message for f in findings)
        assert "'unregistered.point'" in messages  # fired, unregistered
        assert "'stale.point'" in messages  # registered, never fired

    def test_metric_name_drift_fires_a003(self, tmp_path):
        write_module(
            tmp_path,
            "pkg/mod.py",
            '''
            from repro import obs

            def work(n):
                obs.incr("server.request")
                obs.incr("server.requests")
                obs.incr("warpdrive.engaged")
                obs.incr("server.Bad-Segment")
            ''',
        )
        rule = MetricNames(subdir="pkg")
        findings = list(rule.run(AnalysisContext(tmp_path)))
        assert rule_ids(findings) == {"LEX-A003"}
        messages = "\n".join(f.message for f in findings)
        assert "nearly duplicates" in messages
        assert "unknown domain 'warpdrive'" in messages
        assert "'Bad-Segment'" in messages

    def test_metric_domain_ann_is_known_a003(self, tmp_path):
        # The embedding prefilter's counters live under "ann.*"; the
        # domain is registered, but near-misses still need declaring.
        write_module(
            tmp_path,
            "pkg/mod.py",
            '''
            from repro import obs

            def work():
                obs.incr("ann.prefilter.queries")
                obs.incr("ann.prefilter.candidates")
                obs.incr("annex.queries")
            ''',
        )
        rule = MetricNames(subdir="pkg")
        findings = list(rule.run(AnalysisContext(tmp_path)))
        assert rule_ids(findings) == {"LEX-A003"}
        messages = "\n".join(f.message for f in findings)
        assert "unknown domain 'ann'" not in messages
        assert "unknown domain 'annex'" in messages

    def test_unlocked_mutation_fires_a004(self, tmp_path):
        mod = write_module(
            tmp_path,
            "box.py",
            '''
            import threading

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = []
                    self._count = 0

                def bad_append(self, x):
                    self._items.append(x)

                def bad_count(self):
                    self._count += 1

                def good(self, x):
                    with self._lock:
                        self._items.append(x)
                        self._count += 1
                        self._items[0] = x
            ''',
        )
        rule = LockDiscipline(
            locks=(LockSpec(mod, "Box", "_lock", ("_items", "_count")),)
        )
        findings = list(rule.run(AnalysisContext(tmp_path)))
        assert rule_ids(findings) == {"LEX-A004"}
        assert len(findings) == 2
        messages = "\n".join(f.message for f in findings)
        assert "Box.bad_append: self._items" in messages
        assert "Box.bad_count: self._count" in messages

    def test_unmanaged_parallelism_fires_a005(self, tmp_path):
        write_module(
            tmp_path,
            "pkg/rogue.py",
            """
            import os
            import multiprocessing
            from multiprocessing import Pool
            from concurrent.futures import ProcessPoolExecutor

            def run():
                os.fork()
                return multiprocessing.get_context("spawn")
            """,
        )
        write_module(
            tmp_path,
            "pkg/parallel/executor.py",
            """
            import multiprocessing
            from multiprocessing import shared_memory
            """,
        )
        rule = ManagedParallelism(
            subdir="pkg", allowed=("pkg/parallel",)
        )
        findings = list(rule.run(AnalysisContext(tmp_path)))
        assert rule_ids(findings) == {"LEX-A005"}
        messages = "\n".join(f.message for f in findings)
        assert "import of 'multiprocessing'" in messages
        assert "import from 'multiprocessing' (Pool)" in messages
        assert "ProcessPoolExecutor" in messages
        assert "os.fork()" in messages
        assert len(findings) == 4  # allowed package produced none
        assert all(f.file == "pkg/rogue.py" for f in findings)
        assert all("ParallelMatchExecutor" in f.message for f in findings)

    def test_storage_boundary_fires_a006(self, tmp_path):
        from repro.analysis.astrules import StorageBoundary

        write_module(
            tmp_path,
            "pkg/rogue.py",
            '''
            """Mentioning wal.log in a docstring is fine."""
            from repro.storage.layout import wal_path
            from repro.storage.wal import WriteAheadLog
            import repro.storage.layout

            def sneak(data_dir):
                with open(data_dir + "/wal.log", "ab") as fh:
                    fh.write(b"x")
                return data_dir + "/books.idx"
            ''',
        )
        write_module(
            tmp_path,
            "pkg/storage/manager.py",
            """
            from repro.storage.layout import wal_path

            WAL = "wal.log"
            """,
        )
        write_module(
            tmp_path,
            "pkg/fine.py",
            """
            from repro.storage import open_database
            from repro.storage.manager import MemoryBackend
            from repro.storage.snapshots import restore_btree
            """,
        )
        rule = StorageBoundary(subdir="pkg", allowed=("pkg/storage",))
        findings = list(rule.run(AnalysisContext(tmp_path)))
        assert rule_ids(findings) == {"LEX-A006"}
        messages = "\n".join(f.message for f in findings)
        assert "'repro.storage.layout'" in messages
        assert "'repro.storage.wal'" in messages
        assert "'/wal.log'" in messages
        assert "'/books.idx'" in messages
        # 3 imports + 2 literals; allowed package and the public
        # interface (manager/snapshots/open_database) produced none.
        assert len(findings) == 5
        assert all(f.file == "pkg/rogue.py" for f in findings)
        assert all("StorageManager" in f.message for f in findings)

    def test_storage_boundary_covers_ann_sidecar_a006(self, tmp_path):
        # The embedding-index sidecar suffix (.ann) is part of the
        # on-disk contract: its file names belong to repro.storage
        # alone, exactly like .idx artifacts.
        from repro.analysis.astrules import StorageBoundary

        write_module(
            tmp_path,
            "pkg/rogue.py",
            '''
            def sneak(data_dir):
                return data_dir + "/accel_books_author.ann"
            ''',
        )
        write_module(
            tmp_path,
            "pkg/storage/layout.py",
            """
            ANN_INDEX_SUFFIX = ".ann"
            NAME = "accel_books_author.ann"
            """,
        )
        rule = StorageBoundary(subdir="pkg", allowed=("pkg/storage",))
        findings = list(rule.run(AnalysisContext(tmp_path)))
        assert rule_ids(findings) == {"LEX-A006"}
        assert len(findings) == 1
        assert "'/accel_books_author.ann'" in findings[0].message
        assert findings[0].file == "pkg/rogue.py"


# ------------------------------------------------- metric validation API


class TestMetricValidation:
    def test_default_clustered_cost_is_a_metric(self):
        assert check_metric_axioms(ClusteredCost(), all_symbols()) == []

    def test_levenshtein_is_a_metric(self):
        assert check_metric_axioms(LevenshteinCost()) == []

    def test_validate_metric_raises_on_broken_model(self):
        broken = ClusteredCost(
            intra_cluster_cost=1.0, vowel_cross_cost=0.1
        )
        violations = check_metric_axioms(broken)
        assert violations and violations[0].axiom == "triangle"
        with pytest.raises(MatchConfigError, match="triangle"):
            validate_metric(broken)

    def test_bktree_optional_validation(self):
        from repro.matching.editdist import edit_distance

        good = ClusteredCost()
        tree = BKTree(
            lambda a, b: edit_distance(a, b, good), validate_costs=good
        )
        tree.add(("n", "e", "r", "u"), "nehru")
        assert tree.search(("n", "e", "r", "u"), 0.0)
        broken = ClusteredCost(
            intra_cluster_cost=1.0, vowel_cross_cost=0.1
        )
        with pytest.raises(MatchConfigError, match="violates the metric axioms"):
            BKTree(
                lambda a, b: edit_distance(a, b, broken),
                validate_costs=broken,
            )


# ----------------------------------------------------- the repo lints clean


class TestRepoIsClean:
    def test_full_pass_is_clean(self):
        result = lint()
        assert result.clean, render_text(result.findings)
        # The shipped baseline is empty: nothing is being tolerated.
        assert result.suppressed == []
        assert len(result.rules) == 16

    def test_cli_lint_smoke(self, capsys):
        from repro.cli import main

        assert main(["lint", "--select", "op-drift,failpoint-drift"]) == 0
        assert "0 finding(s)" in capsys.readouterr().out
        assert main(["lint", "--list-rules"]) == 0
        assert main(["lint", "--select", "bogus"]) == 2

    def test_cli_lint_json_output(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "lint.json"
        code = main(
            [
                "lint",
                "--format",
                "json",
                "--select",
                "LEX-A001",
                "--output",
                str(out),
            ]
        )
        assert code == 0
        doc = json.loads(out.read_text(encoding="utf-8"))
        assert doc["findings"] == []
        assert doc["rules"][0]["id"] == "LEX-A001"
        capsys.readouterr()
