"""The perf-regression gate: floors, baseline diffs, scaling honesty.

These tests demonstrate (per the acceptance criteria) that the
perf-smoke CI job *fails* when a speedup ratio regresses below the
committed baseline tolerance — including the "N workers must beat 1
worker" scaling ratio, which only a machine with enough CPUs and a big
enough catalog is allowed to enforce.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

from repro import perf

SCRIPTS = os.path.join(os.path.dirname(__file__), "..", "scripts")
REPO = os.path.join(os.path.dirname(__file__), "..")


def report(
    rows=50_000,
    cpu_count=8,
    scaling_workers=4,
    **ratios,
) -> dict:
    base = {
        "kernel_banded_vs_reference": 5.0,
        "kernel_batch_vs_reference": 8.0,
        "executor_vs_naive": 12.0,
        "scaling_4v1": 3.2,
    }
    base.update(ratios)
    return {
        "rows": rows,
        "cpu_count": cpu_count,
        "scaling_workers": scaling_workers,
        "ratios": base,
    }


class TestFloors:
    def test_healthy_report_passes(self):
        assert perf.check_floors(report()) == []

    def test_kernel_floor_trips(self):
        failures = perf.check_floors(
            report(kernel_banded_vs_reference=1.1)
        )
        assert any("kernel_banded_vs_reference" in f for f in failures)

    def test_executor_floor_trips(self):
        failures = perf.check_floors(report(executor_vs_naive=0.9))
        assert any("executor_vs_naive" in f for f in failures)

    def test_missing_ratio_trips(self):
        bad = report()
        del bad["ratios"]["executor_vs_naive"]
        failures = perf.check_floors(bad)
        assert any("missing ratio" in f for f in failures)


class TestScalingGate:
    """The previously-unchecked 'N workers must beat 1 worker' ratio."""

    def test_anti_scaling_fails_on_capable_hardware(self):
        failures = perf.check_floors(report(scaling_4v1=0.8))
        assert any("must beat 1 worker" in f for f in failures)

    def test_anti_scaling_ignored_on_single_cpu(self):
        assert perf.check_floors(report(cpu_count=1, scaling_4v1=0.8)) == []

    def test_anti_scaling_ignored_on_tiny_catalog(self):
        # Below SCALING_MIN_ROWS dispatch overhead dominates the query;
        # the ratio is recorded for the trend line but not enforced.
        assert (
            perf.check_floors(
                report(rows=perf.SCALING_MIN_ROWS - 1, scaling_4v1=0.8)
            )
            == []
        )

    def test_enforcement_boundary(self):
        assert perf.scaling_enforced(report())
        assert not perf.scaling_enforced(report(cpu_count=3))
        assert not perf.scaling_enforced(report(rows=100))


class TestCompare:
    def test_identical_reports_pass(self):
        assert perf.compare(report(), report()) == []

    def test_within_tolerance_passes(self):
        base = report()
        fresh = report(executor_vs_naive=12.0 * 0.75)
        assert perf.compare(base, fresh, tolerance=0.35) == []

    def test_regression_beyond_tolerance_fails(self):
        base = report()
        fresh = report(executor_vs_naive=12.0 * 0.5)
        failures = perf.compare(base, fresh, tolerance=0.35)
        assert any("executor_vs_naive regressed" in f for f in failures)

    def test_scaling_regression_fails_on_capable_hardware(self):
        base = report()
        fresh = report(scaling_4v1=1.5)
        failures = perf.compare(base, fresh, tolerance=0.35)
        assert any("scaling_4v1 regressed" in f for f in failures)

    def test_scaling_regression_skipped_on_single_cpu(self):
        base = report()
        fresh = report(cpu_count=1, scaling_4v1=0.4)
        assert perf.compare(base, fresh, tolerance=0.35) == []

    def test_missing_fresh_ratio_fails(self):
        base = report()
        fresh = report()
        del fresh["ratios"]["kernel_batch_vs_reference"]
        failures = perf.compare(base, fresh)
        assert any("missing ratio" in f for f in failures)

    def test_row_count_mismatch_fails(self):
        failures = perf.compare(report(rows=1500), report(rows=50_000))
        assert failures and "not comparable" in failures[0]

    def test_floors_also_apply_to_fresh(self):
        # compare() is the one gate CI calls; a fresh run that beats a
        # weak baseline but sits under an absolute floor still fails.
        base = report(executor_vs_naive=0.5)
        fresh = report(executor_vs_naive=0.6)
        failures = perf.compare(base, fresh)
        assert any("floor" in f for f in failures)


class TestCompareCli:
    def run_cli(self, tmp_path, baseline, fresh, *extra):
        bpath = tmp_path / "baseline.json"
        fpath = tmp_path / "fresh.json"
        bpath.write_text(json.dumps(baseline))
        fpath.write_text(json.dumps(fresh))
        return subprocess.run(
            [
                sys.executable,
                os.path.join(SCRIPTS, "perf_compare.py"),
                str(bpath),
                str(fpath),
                *extra,
            ],
            capture_output=True,
            text=True,
            cwd=REPO,
        )

    def test_cli_passes_healthy_run(self, tmp_path):
        result = self.run_cli(tmp_path, report(), report())
        assert result.returncode == 0, result.stdout + result.stderr
        assert "perf compare OK" in result.stdout

    def test_cli_fails_scaling_regression(self, tmp_path):
        result = self.run_cli(
            tmp_path, report(), report(scaling_4v1=0.7)
        )
        assert result.returncode == 1
        assert "must beat 1 worker" in result.stdout

    def test_cli_tolerance_flag(self, tmp_path):
        fresh = report(executor_vs_naive=12.0 * 0.55)
        strict = self.run_cli(tmp_path, report(), fresh)
        lax = self.run_cli(
            tmp_path, report(), fresh, "--tolerance", "0.5"
        )
        assert strict.returncode == 1
        assert lax.returncode == 0


class TestCommittedBaseline:
    """The baseline actually committed at the repo root is coherent."""

    @pytest.fixture()
    def baseline(self):
        with open(os.path.join(REPO, "BENCH_baseline.json")) as fh:
            return json.load(fh)

    def test_schema(self, baseline):
        assert baseline["rows"] == 1500
        assert baseline["scaling_workers"] == perf.SCALING_WORKERS
        for key in (
            "kernel_banded_vs_reference",
            "kernel_batch_vs_reference",
            "executor_vs_naive",
            f"scaling_{perf.SCALING_WORKERS}v1",
        ):
            assert key in baseline["ratios"], key

    def test_baseline_clears_its_own_floors(self, baseline):
        # A baseline below the absolute floors would make every fresh
        # run fail check_floors regardless of trend — catch that drift.
        assert (
            baseline["ratios"]["kernel_banded_vs_reference"]
            >= perf.SMOKE_KERNEL_FLOOR
        )
        assert (
            baseline["ratios"]["executor_vs_naive"]
            >= perf.SMOKE_EXECUTOR_FLOOR
        )
